"""Lifetime estimation for NVM-based LLCs.

Combines a wear distribution (writes per line over a simulated window),
the simulated wall-clock duration of that window, and a technology's
endurance spec into a projected time-to-first-failure:

- *unleveled*: the hottest line keeps its observed write rate and fails
  first;
- *ideally leveled*: writes spread uniformly over all frames (the upper
  bound wear leveling approaches).

The gap between the two is the paper's motivation for the
wear-leveling techniques it categorises (Section I, group 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cells.base import CellClass
from repro.endurance.model import SECONDS_PER_YEAR, EnduranceSpec, endurance_of
from repro.endurance.wear import WearSummary
from repro.errors import SimulationError


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected LLC lifetime for one technology and workload.

    ``None`` years means the technology does not wear out at cache
    write rates (SRAM, and effectively STTRAM for most workloads).
    """

    llc_name: str
    cell_class: CellClass
    window_s: float
    total_write_rate: float  # data-array writes per second
    hottest_line_rate: float  # writes/second into the hottest frame
    unleveled_years: Optional[float]
    leveled_years: Optional[float]

    @property
    def leveling_gain(self) -> Optional[float]:
        """Lifetime multiplier ideal wear leveling would buy."""
        if self.unleveled_years is None or self.leveled_years is None:
            return None
        if self.unleveled_years == 0:
            return float("inf")
        return self.leveled_years / self.unleveled_years


def estimate_lifetime(
    llc_name: str,
    cell_class: CellClass,
    wear: WearSummary,
    window_s: float,
    spec: Optional[EnduranceSpec] = None,
) -> LifetimeEstimate:
    """Project lifetime from a simulated wear window.

    Parameters
    ----------
    llc_name / cell_class:
        Identity of the LLC model the wear was replayed against.
    wear:
        Wear distribution from :func:`repro.endurance.wear.replay_with_wear`.
    window_s:
        Simulated wall-clock time the wear window represents.
    spec:
        Endurance override; defaults to the class's Table I values.
    """
    if window_s <= 0:
        raise SimulationError("wear window must have positive duration")
    spec = spec or endurance_of(cell_class)

    n_frames = wear.n_sets * wear.associativity
    total_rate = wear.total_writes / window_s
    hottest_rate = wear.hottest_line_writes / window_s

    if not spec.is_limited:
        return LifetimeEstimate(
            llc_name=llc_name,
            cell_class=cell_class,
            window_s=window_s,
            total_write_rate=total_rate,
            hottest_line_rate=hottest_rate,
            unleveled_years=None,
            leveled_years=None,
        )

    # A frame is a block of cells written together; the frame's life is
    # the per-cell budget (first-failure adjusted for the array size).
    budget = spec.first_failure_budget(n_frames * 512)
    assert budget is not None  # is_limited guarantees a numeric limit

    unleveled = math.inf if hottest_rate == 0 else budget / hottest_rate
    per_frame_rate = total_rate / n_frames if n_frames else 0.0
    leveled = math.inf if per_frame_rate == 0 else budget / per_frame_rate

    return LifetimeEstimate(
        llc_name=llc_name,
        cell_class=cell_class,
        window_s=window_s,
        total_write_rate=total_rate,
        hottest_line_rate=hottest_rate,
        unleveled_years=unleveled / SECONDS_PER_YEAR,
        leveled_years=leveled / SECONDS_PER_YEAR,
    )
