"""Lifetime estimation for NVM-based LLCs.

Combines a wear distribution (writes per line over a simulated window),
the simulated wall-clock duration of that window, and a technology's
endurance spec into a projected time-to-first-failure:

- *unleveled*: the hottest line keeps its observed write rate and fails
  first;
- *ideally leveled*: writes spread uniformly over all frames (the upper
  bound wear leveling approaches).

The gap between the two is the paper's motivation for the
wear-leveling techniques it categorises (Section I, group 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cells.base import CellClass
from repro.endurance.model import SECONDS_PER_YEAR, EnduranceSpec, endurance_of
from repro.endurance.wear import WearSummary
from repro.errors import SimulationError


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected LLC lifetime for one technology and workload.

    ``None`` years means the technology does not wear out at cache
    write rates (SRAM, and effectively STTRAM for most workloads).
    """

    llc_name: str
    cell_class: CellClass
    window_s: float
    total_write_rate: float  # data-array writes per second
    hottest_line_rate: float  # writes/second into the hottest frame
    unleveled_years: Optional[float]
    leveled_years: Optional[float]
    #: Fraction of a frame's cells programmed per write (1.0 = every
    #: write touches the whole line; compression lowers it).
    cell_write_fraction: float = 1.0

    @property
    def leveling_gain(self) -> Optional[float]:
        """Lifetime multiplier ideal wear leveling would buy."""
        if self.unleveled_years is None or self.leveled_years is None:
            return None
        if self.unleveled_years == 0:
            return float("inf")
        return self.leveled_years / self.unleveled_years


def estimate_lifetime(
    llc_name: str,
    cell_class: CellClass,
    wear: WearSummary,
    window_s: float,
    spec: Optional[EnduranceSpec] = None,
    n_frames: Optional[int] = None,
    cell_write_fraction: float = 1.0,
) -> LifetimeEstimate:
    """Project lifetime from a simulated wear window.

    Parameters
    ----------
    llc_name / cell_class:
        Identity of the LLC model the wear was replayed against.
    wear:
        Wear distribution from :func:`repro.endurance.wear.replay_with_wear`.
    window_s:
        Simulated wall-clock time the wear window represents.
    spec:
        Endurance override; defaults to the class's Table I values.
    n_frames:
        Physical frame count of the array.  Defaults to the wear
        summary's ``n_sets * associativity`` — the historical assumption
        that every line occupies exactly one frame.  Capacity-changing
        techniques (compacted-way compression) keep the *physical*
        frame count while holding more lines, so they pass the replay
        outcome's physical geometry explicitly.
    cell_write_fraction:
        Mean fraction of a frame's cells programmed per write, in
        ``(0, 1]``.  Full-size writes stress every cell (1.0); a
        compressed write programs only the compressed bytes, so each
        cell wears at this fraction of the write rate — the L2C2
        forecasting approximation (arXiv:2204.03512).
    """
    if window_s <= 0:
        raise SimulationError("wear window must have positive duration")
    if not 0.0 < cell_write_fraction <= 1.0:
        raise SimulationError(
            f"cell_write_fraction must be in (0, 1], got {cell_write_fraction!r}"
        )
    spec = spec or endurance_of(cell_class)

    if n_frames is None:
        n_frames = wear.n_sets * wear.associativity
    elif n_frames <= 0:
        raise SimulationError(f"n_frames must be positive, got {n_frames}")
    total_rate = wear.total_writes / window_s
    hottest_rate = wear.hottest_line_writes / window_s

    if not spec.is_limited:
        return LifetimeEstimate(
            llc_name=llc_name,
            cell_class=cell_class,
            window_s=window_s,
            total_write_rate=total_rate,
            hottest_line_rate=hottest_rate,
            unleveled_years=None,
            leveled_years=None,
            cell_write_fraction=cell_write_fraction,
        )

    # A frame is a block of cells written together; the frame's life is
    # the per-cell budget (first-failure adjusted for the array size).
    budget = spec.first_failure_budget(n_frames * 512)
    assert budget is not None  # is_limited guarantees a numeric limit

    # Per-cell wear rates: write rate scaled by the fraction of cells
    # each write actually programs (× 1.0 is float-exact, so full-size
    # writes reproduce the historical numbers bit for bit).
    cell_hottest_rate = hottest_rate * cell_write_fraction
    unleveled = math.inf if cell_hottest_rate == 0 else budget / cell_hottest_rate
    per_frame_rate = (
        (total_rate / n_frames) * cell_write_fraction if n_frames else 0.0
    )
    leveled = math.inf if per_frame_rate == 0 else budget / per_frame_rate

    return LifetimeEstimate(
        llc_name=llc_name,
        cell_class=cell_class,
        window_s=window_s,
        total_write_rate=total_rate,
        hottest_line_rate=hottest_rate,
        unleveled_years=unleveled / SECONDS_PER_YEAR,
        leveled_years=leveled / SECONDS_PER_YEAR,
        cell_write_fraction=cell_write_fraction,
    )
