"""Endurance specifications per technology class.

The paper's Table I lists write endurance as the key drawback of PCRAM
("stuck-at faults after 10^7-10^8 writes") and RRAM ("issues occurring
at 10^10 writes"); STTRAM's magnetic switching is effectively unlimited
at cache lifetimes, and SRAM does not wear.  Section VII names lifetime
characterization against architecture-agnostic features as future work —
:mod:`repro.endurance` implements that study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cells.base import CellClass
from repro.errors import ConfigurationError

#: Seconds per year, for lifetime reporting.
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class EnduranceSpec:
    """Write-endurance parameters of one technology class.

    Attributes
    ----------
    write_limit:
        Writes a cell tolerates before stuck-at faults become likely
        (None = effectively unlimited at cache lifetimes).
    variability:
        Lognormal sigma of per-cell limits; 0 means every cell fails at
        exactly ``write_limit``.  Used by the failure model to estimate
        the *first*-failure budget, which is earlier than the mean.
    """

    write_limit: Optional[float]
    variability: float = 0.3

    def __post_init__(self) -> None:
        if self.write_limit is not None and self.write_limit <= 0:
            raise ConfigurationError("write_limit must be positive")
        if self.variability < 0:
            raise ConfigurationError("variability must be nonnegative")

    @property
    def is_limited(self) -> bool:
        """True when the class wears out."""
        return self.write_limit is not None

    def first_failure_budget(self, n_cells: int) -> Optional[float]:
        """Expected writes-to-first-failure for a population of cells.

        With lognormal per-cell limits, the weakest of ``n_cells`` fails
        roughly ``exp(-sigma * sqrt(2 ln n))`` below the median — the
        standard extreme-value shift.  Returns None for unlimited
        classes.
        """
        if self.write_limit is None:
            return None
        if n_cells <= 1 or self.variability == 0.0:
            return self.write_limit
        shift = math.exp(-self.variability * math.sqrt(2.0 * math.log(n_cells)))
        return self.write_limit * shift


#: Endurance limits per class (Table I / Section II).
ENDURANCE: Dict[CellClass, EnduranceSpec] = {
    # PCRAM: stuck-at faults at 10^7-10^8 writes; use the geometric
    # middle of the paper's range.
    CellClass.PCRAM: EnduranceSpec(write_limit=3.2e7),
    # RRAM: "superior write endurance to PCRAM... issues at 10^10".
    CellClass.RRAM: EnduranceSpec(write_limit=1e10),
    # STTRAM: MTJ switching endurance >> cache-relevant write counts.
    CellClass.STTRAM: EnduranceSpec(write_limit=1e15, variability=0.2),
    # SRAM does not wear out.
    CellClass.SRAM: EnduranceSpec(write_limit=None),
}


def endurance_of(cell_class: CellClass) -> EnduranceSpec:
    """Endurance spec for a technology class."""
    return ENDURANCE[cell_class]
