"""Text-mode chart rendering for experiment output.

The paper's figures are grouped bar charts and heatmaps; these renderers
produce their terminal equivalents so ``repro-experiments`` output reads
like the paper without a plotting dependency:

- :func:`bar_chart` — horizontal bars with a reference line (the
  "normalised to SRAM = 1.0" marker of Figures 1/2);
- :func:`grouped_table_heatmap` — per-row or per-column heat glyphs for
  Table III/VI-style extrema marking;
- :func:`correlation_heatmap` — the Figure 4 panels with signed shading.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError

#: Shading ramp, weakest to strongest.
_RAMP = " ░▒▓█"


def _shade(value: float, low: float, high: float) -> str:
    if high <= low:
        return _RAMP[0]
    fraction = (value - low) / (high - low)
    index = min(len(_RAMP) - 1, max(0, int(fraction * len(_RAMP))))
    return _RAMP[index]


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    reference: Optional[float] = 1.0,
    title: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart with an optional reference marker.

    ``log_scale`` renders order-of-magnitude data (energy ratios from
    0.02x to 10x) readably; the reference line is drawn through every
    bar row at its scaled position.
    """
    if not values:
        raise ExperimentError("bar_chart needs at least one value")
    if width < 10:
        raise ExperimentError("bar_chart needs width >= 10")

    def transform(v: float) -> float:
        if log_scale:
            return math.log10(max(1e-12, v))
        return v

    scaled = {k: transform(v) for k, v in values.items()}
    low = min(scaled.values())
    high = max(scaled.values())
    if reference is not None:
        low = min(low, transform(reference))
        high = max(high, transform(reference))
    span = high - low or 1.0

    def position(v: float) -> int:
        return int(round((v - low) / span * (width - 1)))

    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    ref_pos = position(transform(reference)) if reference is not None else None
    for key, value in values.items():
        fill = position(scaled[key])
        row = ["█" if i <= fill else " " for i in range(width)]
        if ref_pos is not None and row[ref_pos] == " ":
            row[ref_pos] = "|"
        lines.append(f"{key.rjust(label_width)} {''.join(row)} {value:.3g}")
    if ref_pos is not None:
        lines.append(
            f"{' ' * label_width} {' ' * ref_pos}^ reference = {reference:g}"
        )
    return "\n".join(lines)


def correlation_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    title: str = "",
) -> str:
    """Render a signed correlation matrix with shading glyphs.

    Positive correlations shade with ``+``-prefixed blocks, negative
    with ``-``; magnitude sets the glyph.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (len(row_labels), len(column_labels)):
        raise ExperimentError("heatmap labels must match the matrix shape")
    label_width = max(len(label) for label in row_labels)
    column_width = max(8, *(len(label) + 1 for label in column_labels))
    lines = [title] if title else []
    header = " " * label_width + "".join(
        label.rjust(column_width) for label in column_labels
    )
    lines.append(header)
    for i, row_label in enumerate(row_labels):
        cells = []
        for j in range(len(column_labels)):
            value = float(matrix[i, j])
            glyph = _shade(abs(value), 0.0, 1.0)
            sign = "+" if value >= 0 else "-"
            cells.append(f"{sign}{abs(value):.2f}{glyph}".rjust(column_width))
        lines.append(row_label.rjust(label_width) + "".join(cells))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend glyph series (core-sweep speedup curves)."""
    if not values:
        raise ExperimentError("sparkline needs at least one value")
    glyphs = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = high - low or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - low) / span * len(glyphs)))]
        for v in values
    )
