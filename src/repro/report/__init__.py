"""Terminal chart rendering and markdown report assembly."""

from repro.report.builder import ReportBuilder
from repro.report.charts import bar_chart, correlation_heatmap, sparkline

__all__ = [
    "ReportBuilder",
    "bar_chart",
    "correlation_heatmap",
    "sparkline",
]
