"""Markdown report assembly for experiment runs.

``repro-experiments --write report.md`` uses this to produce a single
self-contained document: one section per experiment with its rendered
tables, charts, and the run's provenance (scale, seed, versions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ExperimentError


@dataclass
class ReportBuilder:
    """Accumulates titled sections and writes one markdown document."""

    title: str
    scale: float = 1.0
    seed: int = 0
    #: Extra provenance bullets for the header (engine, jobs, digests …).
    provenance: List[str] = field(default_factory=list)
    _sections: List[str] = field(default_factory=list)

    def add_section(self, heading: str, body: str, elapsed_s: Optional[float] = None) -> None:
        """Append one experiment section."""
        if not heading:
            raise ExperimentError("section heading must be nonempty")
        suffix = f"  _(generated in {elapsed_s:.1f}s)_" if elapsed_s is not None else ""
        self._sections.append(f"## {heading}{suffix}\n\n```\n{body}\n```")

    def add_note(self, text: str) -> None:
        """Append free-form markdown."""
        self._sections.append(text)

    @property
    def n_sections(self) -> int:
        """Sections added so far."""
        return len(self._sections)

    def render(self) -> str:
        """The complete markdown document."""
        from repro import __version__

        header = (
            f"# {self.title}\n\n"
            f"- library version: {__version__}\n"
            f"- trace scale: {self.scale}\n"
            f"- seed: {self.seed}\n"
        )
        for line in self.provenance:
            header += f"- {line}\n"
        return header + "\n" + "\n\n".join(self._sections) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the document to disk; returns the path."""
        path = Path(path)
        path.write_text(self.render())
        return path
