"""Trace generation from benchmark profiles.

Turns the declarative :class:`~repro.workloads.profiles.ComponentSpec`
lists of each :class:`~repro.workloads.profiles.BenchmarkProfile` into a
concrete :class:`~repro.trace.Trace` via the samplers in
:mod:`repro.trace.synth`.  Generation is deterministic given the seed,
so every experiment in the suite sees the same trace for a benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.trace.stream import Trace
from repro.trace.synth import (
    StreamComponent,
    compose_trace,
    pointer_chase_sampler,
    pooled_sampler,
    strided_sampler,
)
from repro.workloads.profiles import BenchmarkProfile, ComponentSpec, profile

#: Default seed for the whole workload suite.
DEFAULT_SEED = 20190901  # the paper's IISWC year/month


def _build_component(spec: ComponentSpec) -> StreamComponent:
    if spec.kind == "pool":
        n_pages = max(1, spec.region_bytes // 1024)
        sampler = pooled_sampler(
            base=spec.base,
            n_pages=n_pages,
            skew=spec.skew,
            offsets_per_page=spec.offsets_per_page,
        )
    elif spec.kind == "stride":
        sampler = strided_sampler(
            base=spec.base,
            stride_bytes=spec.stride_bytes,
            region_bytes=spec.region_bytes,
        )
    elif spec.kind == "sweep":
        # Block-granular cyclic loop: LRU's capacity knee primitive.
        sampler = strided_sampler(
            base=spec.base,
            stride_bytes=64,
            region_bytes=spec.region_bytes,
        )
    elif spec.kind == "chase":
        sampler = pointer_chase_sampler(base=spec.base, region_bytes=spec.region_bytes)
    else:  # pragma: no cover - ComponentSpec validates kind
        raise WorkloadError(f"unknown component kind {spec.kind!r}")
    return StreamComponent(
        sampler=sampler, weight=spec.weight, write_fraction=spec.write_fraction
    )


def generate_trace(
    benchmark: str,
    seed: int = DEFAULT_SEED,
    n_accesses: Optional[int] = None,
) -> Trace:
    """Generate the synthetic trace for a benchmark.

    Parameters
    ----------
    benchmark:
        Name from Table V (e.g. ``"deepsjeng"``).
    seed:
        RNG seed; the suite default makes runs reproducible.
    n_accesses:
        Override the profile's trace length (tests use short traces).
    """
    bench = profile(benchmark)
    return generate_from_profile(bench, seed=seed, n_accesses=n_accesses)


def generate_from_profile(
    bench: BenchmarkProfile,
    seed: int = DEFAULT_SEED,
    n_accesses: Optional[int] = None,
    n_threads: Optional[int] = None,
) -> Trace:
    """Generate a trace from an explicit profile object.

    ``n_threads`` overrides the profile's thread count — the core-sweep
    sensitivity study re-generates each multi-threaded workload with one
    thread per simulated core.
    """
    rng = np.random.default_rng([seed, _stable_hash(bench.name)])
    components = [_build_component(spec) for spec in bench.components]
    return compose_trace(
        rng=rng,
        components=components,
        n_accesses=n_accesses or bench.n_accesses,
        mean_gap=bench.mean_gap,
        n_threads=n_threads or bench.n_threads,
        name=bench.name,
        shared_fraction=bench.shared_fraction,
    )


def _stable_hash(name: str) -> int:
    """Deterministic small hash of a benchmark name (not Python's hash,
    which is salted per process)."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % (2**31)
    return value


# -- per-line compressibility (PR 10: compressed NVM LLC) -----------------

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 -> well-mixed uint64.

    Pure integer arithmetic (modular by construction), so the mapping is
    identical on every host, python and numpy version — the property
    the golden snapshots rely on.
    """
    z = (values + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return z ^ (z >> np.uint64(31))


def _line_key(benchmark: str, seed: int) -> np.uint64:
    """The per-(workload, seed) mixing key for line compressibility."""
    raw = np.uint64((seed & 0xFFFFFFFF) << 31 | _stable_hash(benchmark))
    return np.uint64(_splitmix64(np.array([raw], dtype=np.uint64))[0])


def line_size_classes(
    blocks: np.ndarray, benchmark: str, seed: int = DEFAULT_SEED
) -> np.ndarray:
    """Deterministic compressed-size class index per cache line.

    Every 64-byte line (block address) of a workload draws its class
    once from the workload's
    :class:`~repro.workloads.profiles.CompressibilityProfile`: the
    block address is mixed with a (workload, seed) key through
    splitmix64, mapped to a uniform in [0, 1), and inverted through the
    distribution's CDF.  The same line always lands in the same class —
    compressibility is a property of the line's data, not of the access
    — and two workloads (or seeds) decorrelate through the key.
    """
    from repro.workloads.profiles import compressibility

    blocks = np.asarray(blocks, dtype=np.uint64)
    mixed = _splitmix64(blocks ^ _line_key(benchmark, seed))
    # Top 53 bits -> float64 uniform in [0, 1).
    uniforms = (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    cdf = np.asarray(compressibility(benchmark).cdf(), dtype=np.float64)
    return np.searchsorted(cdf, uniforms, side="right").astype(np.int64)


def line_compressed_sizes(
    blocks: np.ndarray, benchmark: str, seed: int = DEFAULT_SEED
) -> np.ndarray:
    """Deterministic compressed size in bytes per cache line."""
    from repro.workloads.profiles import SIZE_CLASSES

    classes = line_size_classes(blocks, benchmark, seed)
    return np.asarray(SIZE_CLASSES, dtype=np.int64)[classes]
