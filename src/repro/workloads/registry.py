"""Workload registry: suite groupings and iteration helpers."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    AI_BENCHMARKS,
    PRISM_EXCLUDED,
    PROFILES,
    BenchmarkProfile,
)

#: Benchmark suite names in Table V order.
SUITES = ("cpu2006", "PARSEC3.0", "NPB3.3.1", "cpu2017")


def all_benchmarks() -> List[str]:
    """All 20 benchmark names, in Table V order."""
    return list(PROFILES)


def benchmarks_in_suite(suite: str) -> List[str]:
    """Benchmark names belonging to one suite."""
    if suite not in SUITES:
        raise WorkloadError(f"unknown suite {suite!r}; known: {', '.join(SUITES)}")
    return [name for name, p in PROFILES.items() if p.suite == suite]


def single_threaded() -> List[str]:
    """The paper's s.t. workloads."""
    return [name for name, p in PROFILES.items() if not p.multithreaded]


def multi_threaded() -> List[str]:
    """The paper's m.t. workloads."""
    return [name for name, p in PROFILES.items() if p.multithreaded]


def ai_benchmarks() -> List[str]:
    """The cpu2017 AI subset used for the specialised analysis."""
    return list(AI_BENCHMARKS)


def characterized_benchmarks() -> List[str]:
    """The 16 PRISM-compatible workloads of Table VI."""
    return [name for name, p in PROFILES.items() if p.prism_compatible]


def suite_of(benchmark: str) -> str:
    """Suite a benchmark belongs to."""
    if benchmark not in PROFILES:
        raise WorkloadError(f"unknown benchmark {benchmark!r}")
    return PROFILES[benchmark].suite


def profiles_by_suite() -> Dict[str, List[BenchmarkProfile]]:
    """Profiles grouped by suite, in Table V order."""
    grouped: Dict[str, List[BenchmarkProfile]] = {suite: [] for suite in SUITES}
    for bench in PROFILES.values():
        grouped[bench.suite].append(bench)
    return grouped
