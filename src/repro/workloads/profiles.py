"""Benchmark profiles: the paper's Tables V and VI as data.

Each :class:`BenchmarkProfile` records what the paper published about a
workload — suite, threading, LLC mpki (Table V) and, for the sixteen
PRISM-compatible workloads, the ten memory-behaviour features
(Table VI) — plus the synthesis parameters our generator uses to emit a
trace with the same *behavioural shape* at a simulable scale.

Scaling note (also in DESIGN.md): the real workloads execute 10^8-10^10
memory accesses; synthetic traces here are 10^4-10^6 accesses with
footprints shrunk accordingly.  Absolute feature values therefore differ
from Table VI; what is preserved — and what the tests check — is the
*relative structure*: which workloads are entropy/footprint extremes,
read- vs write-heavy mixes, and mpki well above the paper's >5 selection
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError

#: Table VI column order (paper labels).
PAPER_FEATURE_LABELS = (
    "H_rg",
    "H_rl",
    "H_wg",
    "H_wl",
    "r_uniq_e6",
    "w_uniq_e6",
    "ft90_r_e3",
    "ft90_w_e3",
    "r_total_e9",
    "w_total_e9",
)


@dataclass(frozen=True)
class PaperFeatures:
    """One row of Table VI (paper units: entropies in bits, uniques in
    10^6 addresses, 90% footprints in 10^3 addresses, totals in 10^9)."""

    H_rg: float
    H_rl: float
    H_wg: float
    H_wl: float
    r_uniq_e6: float
    w_uniq_e6: float
    ft90_r_e3: float
    ft90_w_e3: float
    r_total_e9: float
    w_total_e9: float

    @property
    def write_fraction(self) -> float:
        """Fraction of all accesses that are writes."""
        total = self.r_total_e9 + self.w_total_e9
        return self.w_total_e9 / total if total else 0.0


@dataclass(frozen=True)
class ComponentSpec:
    """Declarative spec for one synthetic stream component.

    ``kind`` selects the sampler: ``"pool"`` (Zipf page pool),
    ``"stride"`` (word-granular sequential stream), ``"sweep"``
    (block-granular cyclic loop — the capacity-sensitivity primitive) or
    ``"chase"`` (uniform random).  Sizes are in bytes;
    ``skew``/``offsets_per_page`` only apply to pools; ``stride_bytes``
    only to strides (sweeps always step one 64-byte block).
    """

    kind: str
    region_bytes: int
    weight: float
    write_fraction: float
    skew: float = 0.0
    stride_bytes: int = 64
    offsets_per_page: int = 128
    base: int = 0x10000000

    def __post_init__(self) -> None:
        if self.kind not in ("pool", "stride", "sweep", "chase"):
            raise WorkloadError(f"unknown component kind {self.kind!r}")
        if self.region_bytes <= 0:
            raise WorkloadError("component region must be positive")


@dataclass(frozen=True)
class BenchmarkProfile:
    """Everything known about one benchmark.

    Attributes
    ----------
    name / suite:
        Table V identity.
    description:
        Table V's one-line description.
    multithreaded:
        True for the paper's m.t. workloads (run with 4 threads).
    is_ai:
        True for the cpu2017 statistical-inference workloads.
    paper_mpki:
        Table V's LLC misses per kilo-instruction.
    paper_features:
        Table VI row, or None for the four PRISM-incompatible cpu2006
        workloads the paper excludes from characterization.
    n_accesses / mean_gap / components / shared_fraction:
        Trace-synthesis parameters (see :mod:`repro.workloads.generators`).
    """

    name: str
    suite: str
    description: str
    multithreaded: bool
    is_ai: bool
    paper_mpki: float
    paper_features: Optional[PaperFeatures]
    n_accesses: int
    mean_gap: float
    components: Tuple[ComponentSpec, ...]
    shared_fraction: float = 0.0

    @property
    def n_threads(self) -> int:
        """Threads the workload runs with (paper: 4 for m.t., 1 for s.t.)."""
        return 4 if self.multithreaded else 1

    @property
    def prism_compatible(self) -> bool:
        """Whether the paper could characterize this workload with PRISM."""
        return self.paper_features is not None


def _pf(*values: float) -> PaperFeatures:
    return PaperFeatures(*values)


_MB = 1024 * 1024
_KB = 1024


def _profiles() -> Dict[str, BenchmarkProfile]:
    # Synthesis design rules (see DESIGN.md section 7):
    #
    # - "sweep": a cyclic block-grain stride-64 loop.  Under LRU it misses
    #   on every access while the region exceeds LLC capacity and hits on
    #   every access once it fits — the sharp capacity knee that makes a
    #   workload reward the dense fixed-area NVMs.  Weights are sized so
    #   the trace completes ~2 passes (weight ~ 2 * region_blocks / n).
    # - "stride" with an 8-byte step models word-granular streaming:
    #   ~8 touches per block absorbed by L1 (so ~weight/8 LLC misses per
    #   access single-threaded, ~weight/2 when four threads interleave),
    #   and no reuse at any LLC size (capacity-insensitive, like the
    #   paper's huge-footprint GemsFDTD).
    # - "chase" over a multi-MB region supplies high-entropy, mostly-cold
    #   traffic (unique-footprint mass and DRAM pressure).
    # - "pool" components model hot data the private levels absorb;
    #   `offsets_per_page` narrows the word footprint without widening
    #   the block footprint.
    # - target LLC mpki ~ 1000 * sum_i(weight_i * missrate_i) / (gap+1).
    #
    # Multi-threaded components are striped per thread (4 threads), so
    # per-thread regions aggregate x4 except sweeps, whose region is the
    # aggregate.
    profiles = [
        # ----------------------------- cpu2006 --------------------------
        BenchmarkProfile(
            name="bzip2",
            suite="cpu2006",
            description="Compression/Decompression, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=142.69,
            paper_features=_pf(18.03, 10.23, 11.72, 5.90, 5.99, 5.88, 2505.38, 750.86, 4.30, 1.47),
            n_accesses=240_000,
            mean_gap=2.0,
            components=(
                ComponentSpec("sweep", 2560 * _KB, weight=0.38, write_fraction=0.25, base=0x100000000),
                ComponentSpec("chase", 4 * _MB, weight=0.06, write_fraction=0.25, base=0x140000000),
                ComponentSpec("pool", 256 * _KB, weight=0.56, write_fraction=0.30, skew=1.5, offsets_per_page=16),
            ),
        ),
        BenchmarkProfile(
            name="gamess",
            suite="cpu2006",
            description="Quantum computations, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=12.83,
            paper_features=None,  # PRISM-incompatible in the paper
            n_accesses=110_000,
            mean_gap=6.0,
            components=(
                ComponentSpec("chase", 2560 * _KB, weight=0.07, write_fraction=0.30, base=0x180000000),
                ComponentSpec("pool", 256 * _KB, weight=0.93, write_fraction=0.30, skew=1.0),
            ),
        ),
        BenchmarkProfile(
            name="GemsFDTD",
            suite="cpu2006",
            description="Maxwell solver 3D, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=12.56,
            paper_features=_pf(19.92, 13.62, 22.27, 14.99, 116.88, 143.63, 76576.59, 113183.50, 1.30, 0.70),
            n_accesses=150_000,
            mean_gap=7.0,
            components=(
                ComponentSpec("stride", 10 * _MB, weight=0.30, write_fraction=0.02, stride_bytes=8, base=0x200000000),
                ComponentSpec("stride", 10 * _MB, weight=0.30, write_fraction=0.90, stride_bytes=8, base=0x300000000),
                ComponentSpec("pool", 512 * _KB, weight=0.40, write_fraction=0.30, skew=0.6),
            ),
        ),
        BenchmarkProfile(
            name="gobmk",
            suite="cpu2006",
            description="Plays Go and analyzes, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=38.08,
            paper_features=None,
            n_accesses=240_000,
            mean_gap=6.0,
            components=(
                ComponentSpec("sweep", 2 * _MB, weight=0.28, write_fraction=0.40, base=0x400000000),
                ComponentSpec("chase", 3 * _MB, weight=0.03, write_fraction=0.40, base=0x440000000),
                ComponentSpec("pool", 384 * _KB, weight=0.69, write_fraction=0.35, skew=1.2),
            ),
        ),
        BenchmarkProfile(
            name="milc",
            suite="cpu2006",
            description="Lattice gauge theory, s.t., MIMD",
            multithreaded=False,
            is_ai=False,
            paper_mpki=16.46,
            paper_features=None,
            n_accesses=120_000,
            mean_gap=6.0,
            components=(
                ComponentSpec("stride", 8 * _MB, weight=0.42, write_fraction=0.30, stride_bytes=8, base=0x500000000),
                ComponentSpec("chase", 2560 * _KB, weight=0.05, write_fraction=0.30, base=0x580000000),
                ComponentSpec("pool", 256 * _KB, weight=0.45, write_fraction=0.25, skew=0.9),
            ),
        ),
        BenchmarkProfile(
            name="perlbench",
            suite="cpu2006",
            description="Perl interpreter, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=7.57,
            paper_features=None,
            n_accesses=100_000,
            mean_gap=8.0,
            components=(
                ComponentSpec("pool", 512 * _KB, weight=0.94, write_fraction=0.35, skew=1.2),
                ComponentSpec("chase", 2560 * _KB, weight=0.06, write_fraction=0.30, base=0x600000000),
            ),
        ),
        BenchmarkProfile(
            name="tonto",
            suite="cpu2006",
            description="Quantum package, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=12.39,
            paper_features=_pf(10.97, 5.15, 10.25, 3.72, 0.30, 0.29, 5.59, 1.74, 1.10, 0.47),
            n_accesses=110_000,
            mean_gap=6.0,
            components=(
                ComponentSpec("pool", 128 * _KB, weight=0.90, write_fraction=0.30, skew=1.6, offsets_per_page=8),
                ComponentSpec("chase", 2 * _MB, weight=0.10, write_fraction=0.30, base=0x680000000),
            ),
        ),
        # ----------------------------- PARSEC 3.0 -----------------------
        BenchmarkProfile(
            name="x264",
            suite="PARSEC3.0",
            description="MPEG-4 encoding, s.t.",
            multithreaded=False,
            is_ai=False,
            paper_mpki=17.81,
            paper_features=_pf(16.14, 7.43, 11.84, 4.04, 11.40, 9.28, 1585.49, 3.56, 18.07, 2.84),
            n_accesses=280_000,
            mean_gap=4.0,
            components=(
                ComponentSpec("stride", 6 * _MB, weight=0.50, write_fraction=0.02, stride_bytes=8, base=0x700000000),
                ComponentSpec("chase", 2 * _MB, weight=0.015, write_fraction=0.05, base=0x780000000),
                ComponentSpec("pool", 768 * _KB, weight=0.335, write_fraction=0.05, skew=1.0),
                ComponentSpec("pool", 64 * _KB, weight=0.15, write_fraction=0.80, skew=1.5, offsets_per_page=8, base=0x20000000),
            ),
        ),
        BenchmarkProfile(
            name="vips",
            suite="PARSEC3.0",
            description="Image transformation, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=5.43,
            paper_features=_pf(15.17, 10.26, 17.79, 11.61, 12.02, 6.32, 1107.19, 1325.34, 1.91, 0.68),
            n_accesses=120_000,
            mean_gap=11.0,
            components=(
                ComponentSpec("stride", 2 * _MB, weight=0.04, write_fraction=0.02, stride_bytes=8, base=0x800000000),
                ComponentSpec("stride", 2 * _MB, weight=0.03, write_fraction=0.80, stride_bytes=8, base=0x900000000),
                ComponentSpec("pool", 128 * _KB, weight=0.93, write_fraction=0.20, skew=0.8),
            ),
            shared_fraction=0.05,
        ),
        # ----------------------------- NPB 3.3.1 ------------------------
        BenchmarkProfile(
            name="cg",
            suite="NPB3.3.1",
            description="Conjugate gradient, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=80.89,
            paper_features=_pf(19.01, 11.71, 18.88, 11.96, 2.30, 2.36, 1015.43, 819.15, 0.73, 0.04),
            n_accesses=200_000,
            mean_gap=2.5,
            components=(
                ComponentSpec("sweep", 1536 * _KB, weight=0.31, write_fraction=0.03, base=0xA00000000),
                ComponentSpec("chase", 1 * _MB, weight=0.02, write_fraction=0.03, base=0xA40000000),
                ComponentSpec("pool", 128 * _KB, weight=0.67, write_fraction=0.10, skew=1.0),
            ),
            shared_fraction=0.10,
        ),
        BenchmarkProfile(
            name="ep",
            suite="NPB3.3.1",
            description="Embarrassingly parallel, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=9.31,
            paper_features=_pf(8.00, 4.81, 8.05, 4.74, 0.563, 1.47, 0.84, 113.18, 1.25, 0.54),
            n_accesses=110_000,
            mean_gap=7.0,
            components=(
                ComponentSpec("pool", 192 * _KB, weight=0.81, write_fraction=0.30, skew=1.3, offsets_per_page=16),
                ComponentSpec("chase", 1 * _MB, weight=0.05, write_fraction=0.40, base=0xA80000000),
                ComponentSpec("stride", 512 * _KB, weight=0.14, write_fraction=0.50, stride_bytes=8),
            ),
            shared_fraction=0.02,
        ),
        BenchmarkProfile(
            name="ft",
            suite="NPB3.3.1",
            description="discrete 3D FFT, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=15.39,
            paper_features=_pf(16.47, 9.93, 17.07, 10.28, 2.73, 2.72, 342.64, 611.66, 0.28, 0.27),
            n_accesses=140_000,
            mean_gap=5.0,
            components=(
                ComponentSpec("stride", 3 * _MB, weight=0.10, write_fraction=0.45, stride_bytes=8, base=0xB00000000),
                ComponentSpec("chase", 2 * _MB, weight=0.015, write_fraction=0.50, base=0xC00000000),
                ComponentSpec("pool", 128 * _KB, weight=0.885, write_fraction=0.50, skew=0.8),
            ),
            shared_fraction=0.10,
        ),
        BenchmarkProfile(
            name="is",
            suite="NPB3.3.1",
            description="Integer sort, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=35.63,
            paper_features=_pf(15.23, 8.96, 15.65, 8.69, 2.20, 2.19, 1228.86, 794.26, 0.12, 0.06),
            n_accesses=100_000,
            mean_gap=3.0,
            components=(
                ComponentSpec("chase", 2560 * _KB, weight=0.08, write_fraction=0.35, base=0xD00000000),
                ComponentSpec("stride", 1536 * _KB, weight=0.06, write_fraction=0.30, stride_bytes=8),
                ComponentSpec("pool", 192 * _KB, weight=0.86, write_fraction=0.30, skew=0.9),
            ),
            shared_fraction=0.10,
        ),
        BenchmarkProfile(
            name="lu",
            suite="NPB3.3.1",
            description="LU Gauss-Seidel solver, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=14.42,
            paper_features=_pf(9.57, 6.01, 16.02, 9.63, 0.844, 0.84, 289.46, 259.75, 17.84, 3.99),
            n_accesses=300_000,
            mean_gap=4.0,
            components=(
                ComponentSpec("pool", 768 * _KB, weight=0.865, write_fraction=0.10, skew=1.6, offsets_per_page=32),
                ComponentSpec("stride", 2 * _MB, weight=0.12, write_fraction=0.45, stride_bytes=8, base=0xE00000000),
                ComponentSpec("chase", 2 * _MB, weight=0.015, write_fraction=0.40, base=0xE80000000),
            ),
            shared_fraction=0.08,
        ),
        BenchmarkProfile(
            name="mg",
            suite="NPB3.3.1",
            description="Multigrid on meshes, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=65.09,
            paper_features=_pf(17.97, 11.80, 16.93, 10.18, 7.20, 7.29, 4249.78, 4767.97, 0.76, 0.16),
            n_accesses=220_000,
            mean_gap=3.0,
            components=(
                ComponentSpec("sweep", 1536 * _KB, weight=0.21, write_fraction=0.15, base=0xF00000000),
                ComponentSpec("stride", 4 * _MB, weight=0.06, write_fraction=0.18, stride_bytes=8, base=0xF80000000),
                ComponentSpec("chase", 2 * _MB, weight=0.015, write_fraction=0.15, base=0x1000000000),
                ComponentSpec("pool", 256 * _KB, weight=0.715, write_fraction=0.18, skew=0.8),
            ),
            shared_fraction=0.10,
        ),
        BenchmarkProfile(
            name="sp",
            suite="NPB3.3.1",
            description="Scalar penta-diagonal solver, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=44.35,
            paper_features=_pf(18.69, 12.02, 18.21, 11.35, 1.14, 1.28, 556.75, 256.73, 9.23, 4.12),
            n_accesses=220_000,
            mean_gap=4.0,
            components=(
                ComponentSpec("sweep", 1536 * _KB, weight=0.22, write_fraction=0.30, base=0x1100000000),
                ComponentSpec("chase", 1536 * _KB, weight=0.02, write_fraction=0.30, base=0x1140000000),
                ComponentSpec("pool", 192 * _KB, weight=0.76, write_fraction=0.30, skew=0.8),
            ),
            shared_fraction=0.10,
        ),
        BenchmarkProfile(
            name="ua",
            suite="NPB3.3.1",
            description="Unstructured adaptive mesh, m.t.",
            multithreaded=True,
            is_ai=False,
            paper_mpki=39.08,
            paper_features=_pf(13.95, 8.17, 11.23, 5.69, 1.32, 1.57, 362.45, 106.25, 9.97, 5.85),
            n_accesses=240_000,
            mean_gap=3.0,
            components=(
                ComponentSpec("sweep", 1280 * _KB, weight=0.17, write_fraction=0.35, base=0x1200000000),
                ComponentSpec("pool", 384 * _KB, weight=0.78, write_fraction=0.40, skew=1.2, offsets_per_page=32),
                ComponentSpec("chase", 1536 * _KB, weight=0.05, write_fraction=0.35, base=0x1240000000),
            ),
            shared_fraction=0.08,
        ),
        # ----------------------------- cpu2017 (AI) ---------------------
        BenchmarkProfile(
            name="deepsjeng",
            suite="cpu2017",
            description="AI: alpha-beta tree search, s.t.",
            multithreaded=False,
            is_ai=True,
            paper_mpki=159.58,
            paper_features=_pf(11.31, 5.69, 11.86, 5.93, 58.89, 68.28, 4.79, 4.33, 9.36, 4.43),
            n_accesses=280_000,
            mean_gap=1.5,
            components=(
                ComponentSpec("sweep", 3 * _MB, weight=0.37, write_fraction=0.48, base=0x1300000000),
                ComponentSpec("chase", 6 * _MB, weight=0.05, write_fraction=0.48, base=0x1340000000),
                # LLC-resident transposition-table slice: read-heavy LLC
                # hits that expose NVM read latency on the critical path.
                ComponentSpec("sweep", 448 * _KB, weight=0.18, write_fraction=0.48, base=0x1360000000),
                ComponentSpec("pool", 128 * _KB, weight=0.40, write_fraction=0.40, skew=1.8, offsets_per_page=8),
            ),
        ),
        BenchmarkProfile(
            name="leela",
            suite="cpu2017",
            description="AI: Monte Carlo tree search, s.t.",
            multithreaded=False,
            is_ai=True,
            paper_mpki=24.05,
            paper_features=_pf(10.13, 4.07, 8.95, 3.01, 2.26, 5.06, 1.59, 1.29, 6.01, 2.35),
            n_accesses=160_000,
            mean_gap=4.0,
            components=(
                ComponentSpec("pool", 96 * _KB, weight=0.86, write_fraction=0.25, skew=2.2, offsets_per_page=4),
                ComponentSpec("chase", 9 * _MB, weight=0.14, write_fraction=0.45, base=0x1400000000),
            ),
        ),
        BenchmarkProfile(
            name="exchange2",
            suite="cpu2017",
            description="AI: recursive solution generator, s.t.",
            multithreaded=False,
            is_ai=True,
            paper_mpki=13.50,
            paper_features=_pf(8.79, 3.52, 8.61, 3.47, 0.03, 0.02, 0.64, 0.58, 62.28, 42.89),
            n_accesses=550_000,
            mean_gap=6.0,
            components=(
                ComponentSpec("pool", 160 * _KB, weight=0.905, write_fraction=0.41, skew=1.9, offsets_per_page=4),
                ComponentSpec("pool", 48 * _KB, weight=0.04, write_fraction=0.41, skew=1.0, offsets_per_page=4, base=0x30000000),
                # L2-churning spill: just over the private L2, resident in
                # any LLC — recursion state that streams writebacks without
                # widening the word footprint past leela's.
                ComponentSpec("sweep", 320 * _KB, weight=0.04, write_fraction=0.90, base=0x38000000),
                ComponentSpec("chase", 3 * _MB, weight=0.015, write_fraction=0.41, base=0x1500000000),
            ),
        ),
    ]
    return {p.name: p for p in profiles}


#: All benchmark profiles, keyed by name (Table V order preserved).
PROFILES: Dict[str, BenchmarkProfile] = _profiles()

#: The four cpu2006 workloads the paper excludes from characterization.
PRISM_EXCLUDED = ("gamess", "gobmk", "milc", "perlbench")

#: The paper's AI benchmark subset (cpu2017 statistical inference).
AI_BENCHMARKS = ("deepsjeng", "leela", "exchange2")


def profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    if name not in PROFILES:
        from repro.validate.schema import unknown_key_message

        raise WorkloadError(
            unknown_key_message("benchmark", name, sorted(PROFILES))
        )
    return PROFILES[name]


# -- per-line compressibility (PR 10: compressed NVM LLC) -----------------

#: Compressed-size classes in bytes: eighths of the 64-byte line, the
#: quantisation L2C2 (arXiv:2204.09504) uses for its compacted ways.
#: A line's class is the smallest class its compressed form fits.
SIZE_CLASSES: Tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56, 64)


@dataclass(frozen=True)
class CompressibilityProfile:
    """A workload's distribution over compressed-size classes.

    Traces carry no data values, so compressibility is modeled the same
    way the trace itself is: as a declarative per-workload distribution,
    sampled deterministically per cache line (see
    :func:`repro.workloads.generators.line_compressed_sizes`).  The
    weights follow the FPC/BDI literature's shape: integer-heavy and
    inference workloads carry many zero/narrow-value lines (small
    classes), floating-point arrays compress poorly (large classes).
    """

    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(SIZE_CLASSES):
            raise WorkloadError(
                f"compressibility needs {len(SIZE_CLASSES)} class weights, "
                f"got {len(self.weights)}"
            )
        if any(w < 0 for w in self.weights):
            raise WorkloadError("compressibility weights must be non-negative")
        if sum(self.weights) <= 0:
            raise WorkloadError("compressibility weights must sum above zero")

    @property
    def probabilities(self) -> Tuple[float, ...]:
        """Normalised class probabilities."""
        total = sum(self.weights)
        return tuple(w / total for w in self.weights)

    @property
    def mean_size_bytes(self) -> float:
        """Expected compressed line size."""
        return sum(
            p * size for p, size in zip(self.probabilities, SIZE_CLASSES)
        )

    @property
    def mean_ratio(self) -> float:
        """Expected compression ratio (uncompressed / compressed)."""
        return SIZE_CLASSES[-1] / self.mean_size_bytes

    def cdf(self) -> Tuple[float, ...]:
        """Cumulative class probabilities (last entry exactly 1.0)."""
        out = []
        acc = 0.0
        for p in self.probabilities:
            acc += p
            out.append(acc)
        out[-1] = 1.0
        return tuple(out)


#: A line that does not compress: all mass on the full 64-byte class.
INCOMPRESSIBLE = CompressibilityProfile(
    weights=(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0)
)

#: Per-workload compressibility distributions.  Grouped by data-type
#: character rather than suite: integer/state-machine codes (bzip2,
#: gobmk, the AI trio) lean on narrow values and repeated patterns;
#: dense floating-point kernels (NPB, GemsFDTD, milc) are dominated by
#: mantissa entropy and sit near the full-size classes; media codes
#: (x264, vips) fall in between.  Workloads not listed here use
#: ``DEFAULT_COMPRESSIBILITY``.
COMPRESSIBILITY: Dict[str, CompressibilityProfile] = {
    # integer / control-heavy cpu2006
    "bzip2": CompressibilityProfile((0.10, 0.16, 0.18, 0.20, 0.14, 0.10, 0.07, 0.05)),
    "gamess": CompressibilityProfile((0.04, 0.07, 0.10, 0.14, 0.16, 0.18, 0.16, 0.15)),
    "GemsFDTD": CompressibilityProfile((0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.24, 0.28)),
    "gobmk": CompressibilityProfile((0.14, 0.18, 0.18, 0.16, 0.12, 0.09, 0.07, 0.06)),
    "milc": CompressibilityProfile((0.02, 0.03, 0.05, 0.07, 0.11, 0.17, 0.25, 0.30)),
    "perlbench": CompressibilityProfile((0.12, 0.16, 0.17, 0.16, 0.13, 0.10, 0.09, 0.07)),
    "tonto": CompressibilityProfile((0.04, 0.06, 0.09, 0.13, 0.16, 0.18, 0.18, 0.16)),
    "x264": CompressibilityProfile((0.08, 0.12, 0.15, 0.17, 0.16, 0.13, 0.10, 0.09)),
    "vips": CompressibilityProfile((0.07, 0.11, 0.14, 0.17, 0.16, 0.14, 0.11, 0.10)),
    # NPB floating-point kernels
    "cg": CompressibilityProfile((0.02, 0.03, 0.04, 0.07, 0.11, 0.17, 0.25, 0.31)),
    "ep": CompressibilityProfile((0.03, 0.04, 0.06, 0.09, 0.13, 0.18, 0.23, 0.24)),
    "ft": CompressibilityProfile((0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.24, 0.28)),
    "is": CompressibilityProfile((0.16, 0.20, 0.18, 0.15, 0.11, 0.08, 0.07, 0.05)),
    "lu": CompressibilityProfile((0.02, 0.04, 0.06, 0.09, 0.13, 0.18, 0.23, 0.25)),
    "mg": CompressibilityProfile((0.03, 0.04, 0.06, 0.09, 0.13, 0.18, 0.23, 0.24)),
    "sp": CompressibilityProfile((0.02, 0.03, 0.05, 0.08, 0.13, 0.18, 0.24, 0.27)),
    "ua": CompressibilityProfile((0.03, 0.04, 0.06, 0.10, 0.13, 0.18, 0.22, 0.24)),
    # cpu2017 statistical inference (narrow weights, sparse activations)
    "deepsjeng": CompressibilityProfile((0.16, 0.19, 0.18, 0.15, 0.11, 0.08, 0.07, 0.06)),
    "leela": CompressibilityProfile((0.15, 0.18, 0.18, 0.15, 0.12, 0.09, 0.07, 0.06)),
    "exchange2": CompressibilityProfile((0.18, 0.20, 0.18, 0.14, 0.10, 0.08, 0.07, 0.05)),
}

#: Fallback distribution for workloads without a dedicated entry:
#: mildly compressible, mean ratio ~1.5x.
DEFAULT_COMPRESSIBILITY = CompressibilityProfile(
    weights=(0.05, 0.08, 0.11, 0.14, 0.16, 0.16, 0.15, 0.15)
)


def compressibility(name: str) -> CompressibilityProfile:
    """The compressibility distribution for a benchmark.

    Unknown names raise the same did-you-mean error as :func:`profile`,
    so a typo cannot silently pick up the default distribution.
    """
    profile(name)  # validates the benchmark name
    return COMPRESSIBILITY.get(name, DEFAULT_COMPRESSIBILITY)
