"""Trace-scaling stability analysis.

DESIGN.md's scaling note claims the synthetic workloads preserve their
*relative structure* when trace length shrinks.  This module makes that
claim measurable: generate one benchmark at several scales, extract the
Table VI features at each, and report per-feature drift.  Intensive
features (entropies, write intensity) should be nearly scale-invariant;
extensive features (totals, unique counts) scale with length by
construction and are reported as ratios to the expected linear trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures, extract_features
from repro.workloads.generators import DEFAULT_SEED, generate_from_profile
from repro.workloads.profiles import profile

#: Features whose values should not move with trace length.
INTENSIVE_FEATURES: Tuple[str, ...] = (
    "read_global_entropy",
    "read_local_entropy",
    "write_global_entropy",
    "write_local_entropy",
)

#: Features expected to grow ~linearly with trace length.
EXTENSIVE_FEATURES: Tuple[str, ...] = (
    "total_reads",
    "total_writes",
)


@dataclass(frozen=True)
class ScalingReport:
    """Feature values of one benchmark across trace scales."""

    benchmark: str
    scales: Tuple[float, ...]
    features: Tuple[WorkloadFeatures, ...]

    def values(self, feature: str) -> List[float]:
        """One feature across the scales."""
        if feature not in FEATURE_NAMES:
            raise WorkloadError(f"unknown feature {feature!r}")
        return [float(getattr(f, feature)) for f in self.features]

    def intensive_drift(self, feature: str) -> float:
        """Max relative deviation of an intensive feature from its
        full-scale value (0 = perfectly stable)."""
        values = self.values(feature)
        reference = values[-1]
        if reference == 0:
            return 0.0 if all(v == 0 for v in values) else float("inf")
        return max(abs(v - reference) / abs(reference) for v in values)

    def extensive_linearity(self, feature: str) -> float:
        """Max relative deviation of an extensive feature from the
        linear-in-scale trend anchored at full scale."""
        values = self.values(feature)
        reference = values[-1]
        full = self.scales[-1]
        if reference == 0:
            return 0.0
        worst = 0.0
        for scale, value in zip(self.scales, values):
            expected = reference * (scale / full)
            if expected:
                worst = max(worst, abs(value - expected) / expected)
        return worst

    def stable(
        self, intensive_tolerance: float = 0.15, extensive_tolerance: float = 0.1
    ) -> bool:
        """Whether the benchmark passes the DESIGN.md scaling claim."""
        return all(
            self.intensive_drift(f) <= intensive_tolerance
            for f in INTENSIVE_FEATURES
        ) and all(
            self.extensive_linearity(f) <= extensive_tolerance
            for f in EXTENSIVE_FEATURES
        )


def scaling_report(
    benchmark: str,
    scales: Sequence[float] = (0.25, 0.5, 1.0),
    seed: int = DEFAULT_SEED,
) -> ScalingReport:
    """Generate the benchmark at each scale and profile it."""
    if not scales or any(not 0.0 < s <= 1.0 for s in scales):
        raise WorkloadError("scales must be in (0, 1]")
    ordered = tuple(sorted(scales))
    bench = profile(benchmark)
    features = []
    for scale in ordered:
        n = max(2000, int(bench.n_accesses * scale))
        trace = generate_from_profile(bench, seed=seed, n_accesses=n)
        features.append(extract_features(trace))
    return ScalingReport(
        benchmark=benchmark, scales=ordered, features=tuple(features)
    )
