"""Benchmark profiles and synthetic trace generators (Tables V & VI)."""

from repro.workloads.generators import (
    DEFAULT_SEED,
    generate_from_profile,
    generate_trace,
)
from repro.workloads.profiles import (
    AI_BENCHMARKS,
    PAPER_FEATURE_LABELS,
    PRISM_EXCLUDED,
    PROFILES,
    BenchmarkProfile,
    ComponentSpec,
    PaperFeatures,
    profile,
)
from repro.workloads.scaling import (
    EXTENSIVE_FEATURES,
    INTENSIVE_FEATURES,
    ScalingReport,
    scaling_report,
)
from repro.workloads.registry import (
    SUITES,
    all_benchmarks,
    ai_benchmarks,
    benchmarks_in_suite,
    characterized_benchmarks,
    multi_threaded,
    profiles_by_suite,
    single_threaded,
    suite_of,
)

__all__ = [
    "DEFAULT_SEED",
    "generate_from_profile",
    "generate_trace",
    "AI_BENCHMARKS",
    "PAPER_FEATURE_LABELS",
    "PRISM_EXCLUDED",
    "PROFILES",
    "BenchmarkProfile",
    "ComponentSpec",
    "PaperFeatures",
    "profile",
    "SUITES",
    "all_benchmarks",
    "ai_benchmarks",
    "benchmarks_in_suite",
    "characterized_benchmarks",
    "multi_threaded",
    "profiles_by_suite",
    "single_threaded",
    "suite_of",
    "EXTENSIVE_FEATURES",
    "INTENSIVE_FEATURES",
    "ScalingReport",
    "scaling_report",
]
