"""repro.validate — the input-boundary validation firewall.

Gates every external input and every model output behind a
``strict | lenient | off`` policy (``REPRO_VALIDATE`` / ``--validate``):

- :mod:`repro.validate.policy` — the policy knob itself;
- :mod:`repro.validate.guard` — model/result/counts plausibility
  guards run before anything is journaled, cached or rendered;
- :mod:`repro.validate.schema` — did-you-mean name lookups and
  config-mapping schema checks;
- :mod:`repro.validate.doctor` — the ``repro-cli doctor`` self-check.

The trace-ingestion layer lives with the formats it validates
(:mod:`repro.trace.io`) and cell plausibility with the cell schema
(:mod:`repro.cells.validation`); both consult this package's policy.

Design rule: validation *rejects, never repairs* — no value is ever
modified on the way through, so a passing run's outputs are
byte-identical whatever the policy, and ``off`` restores pre-firewall
behavior exactly.
"""

from repro.validate.guard import (
    check_sweep_models,
    guard_compression,
    guard_counts,
    guard_model,
    guard_result,
    guard_value,
)
from repro.validate.policy import (
    POLICY_ENV,
    Policy,
    current_policy,
    policy_from_env,
    resolve_policy,
    set_policy,
)
from repro.validate.schema import (
    architecture_from_mapping,
    did_you_mean,
    unknown_key_message,
    validate_keys,
)

__all__ = [
    "POLICY_ENV",
    "Policy",
    "architecture_from_mapping",
    "check_sweep_models",
    "current_policy",
    "did_you_mean",
    "guard_compression",
    "guard_counts",
    "guard_model",
    "guard_result",
    "guard_value",
    "policy_from_env",
    "resolve_policy",
    "set_policy",
    "unknown_key_message",
    "validate_keys",
]
