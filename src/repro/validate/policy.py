"""The validation firewall's policy knob: ``strict | lenient | off``.

One policy governs every boundary the firewall gates — trace ingestion
(:mod:`repro.trace.io`), cell plausibility
(:mod:`repro.cells.validation`), model-output guards
(:mod:`repro.validate.guard`):

- ``strict`` (default) — any violation raises a structured
  :class:`~repro.errors.ReproError` subclass before the bad value can
  reach a sweep, the replay cache or the checkpoint journal.
- ``lenient`` — recoverable violations are *quarantined*: counted in
  :mod:`repro.obs` metrics (``validate.*`` counters, surfaced in the
  run manifest), warned once to stderr, and execution continues.
  Structural garbage (a truncated npz, an unparseable config) still
  raises — there is nothing to continue with.
- ``off`` — the firewall's *added* checks are skipped entirely; the
  library behaves exactly as it did before the firewall existed
  (outputs byte-identical).  Intrinsic errors (missing files,
  malformed lines) still raise as they always have.

Resolution order: an explicit ``--validate`` flag (which also exports
``REPRO_VALIDATE`` so parallel workers inherit it) > a
:func:`set_policy` override > the ``REPRO_VALIDATE`` environment
variable > ``strict``.  Like every knob in this library, the
environment is read at call time, never at import time.
"""

from __future__ import annotations

import enum
import os
from typing import Optional, Union

from repro.errors import ConfigurationError

#: Environment variable selecting the validation policy.
POLICY_ENV = "REPRO_VALIDATE"


class Policy(enum.Enum):
    """Validation firewall mode (see module docstring)."""

    STRICT = "strict"
    LENIENT = "lenient"
    OFF = "off"

    @property
    def active(self) -> bool:
        """True when the firewall performs its added checks at all."""
        return self is not Policy.OFF


#: Process-local override installed by :func:`set_policy` (tests, CLIs).
_OVERRIDE: Optional[Policy] = None


def _parse(value: str, source: str) -> Policy:
    try:
        return Policy(value.strip().lower())
    except ValueError:
        known = ", ".join(p.value for p in Policy)
        raise ConfigurationError(
            f"{source} must be one of {known}; got {value!r}"
        ) from None


def policy_from_env() -> Policy:
    """The policy the environment selects (default ``strict``)."""
    raw = os.environ.get(POLICY_ENV, "")
    if not raw.strip():
        return Policy.STRICT
    return _parse(raw, POLICY_ENV)


def current_policy() -> Policy:
    """The policy in force right now (override, else environment)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return policy_from_env()


def resolve_policy(value: Union[Policy, str, None]) -> Policy:
    """Normalise an explicit policy argument (None = current policy)."""
    if value is None:
        return current_policy()
    if isinstance(value, Policy):
        return value
    return _parse(value, "validation policy")


def set_policy(value: Union[Policy, str, None]) -> Policy:
    """Install a process-local policy override (None removes it).

    Returns the policy now in force.  The CLIs prefer exporting
    ``REPRO_VALIDATE`` instead, so worker processes inherit the choice;
    this function exists for tests and embedding code.
    """
    global _OVERRIDE
    _OVERRIDE = None if value is None else resolve_policy(value)
    return current_policy()
