"""Tolerance-aware comparison of rendered experiment output.

The golden-result regression suite (``tests/golden/``) pins the full
rendered text of every experiment at a tiny, seeded scale.  A byte
comparison would be too brittle — a different BLAS, platform ``libm`` or
numpy version can legitimately flip the last bit of a float — so
:func:`compare_rendered` compares *structure exactly, numbers
approximately*:

- the two texts must have the same line count;
- per line, everything between numbers (whitespace-collapsed) must
  match byte-for-byte;
- numeric tokens must agree within ``rel_tol``/``abs_tol``
  (:func:`math.isclose` semantics);
- runs of chart glyphs (bars, shading ramps, sparklines) may differ by
  one glyph — a value sitting exactly on a bucket boundary may round
  either way under a one-ulp input change.

Snapshots are stored as JSON (:func:`save_snapshot` /
:func:`load_snapshot`) carrying the experiment id, the scale/seed that
produced them and the rendered text; ``tools/regen_golden.py``
regenerates the whole set when a change to the numbers is *intended*.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import ExperimentError

#: Snapshot file schema (bump on incompatible layout changes).
SNAPSHOT_SCHEMA = 1

#: Default relative tolerance for numeric tokens.  Wide enough for
#: cross-platform libm/BLAS noise, far tighter than any real regression.
DEFAULT_REL_TOL = 1e-6

#: Default absolute tolerance (matters only for values near zero).
DEFAULT_ABS_TOL = 1e-9

_NUMBER_RE = re.compile(r"[-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?")

#: Characters used by the text-mode charts; runs of these tolerate a
#: one-glyph length difference (bucket-boundary rounding).
_GLYPH_CHARS = set("█▓▒░▁▂▃▄▅▆▇|^")


def _parts(line: str) -> List[tuple]:
    """Split a line into ``("text", str)`` / ``("num", float)`` parts.

    Text parts are whitespace-collapsed so tolerated numeric width
    changes (and the column padding they shift) never register as
    structural differences.
    """
    parts: List[tuple] = []
    pos = 0
    for match in _NUMBER_RE.finditer(line):
        text = " ".join(line[pos:match.start()].split())
        if text:
            parts.append(("text", text))
        parts.append(("num", float(match.group())))
        pos = match.end()
    text = " ".join(line[pos:].split())
    if text:
        parts.append(("text", text))
    return parts


def _glyph_run(text: str) -> bool:
    return bool(text) and all(ch in _GLYPH_CHARS for ch in text)


def _text_matches(expected: str, actual: str) -> bool:
    if expected == actual:
        return True
    if _glyph_run(expected) and _glyph_run(actual):
        return abs(len(expected) - len(actual)) <= 1
    return False


def compare_rendered(
    expected: str,
    actual: str,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
    label: str = "render",
) -> List[str]:
    """Compare two rendered texts; returns a list of mismatch messages.

    An empty list means the texts agree (structure exactly, numbers
    within tolerance).  Each message names the 1-based line and what
    diverged, so a failing golden test reads like a diff.
    """
    mismatches: List[str] = []
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    if len(expected_lines) != len(actual_lines):
        mismatches.append(
            f"{label}: line count {len(actual_lines)} != expected "
            f"{len(expected_lines)}"
        )
        return mismatches
    for lineno, (want, got) in enumerate(
        zip(expected_lines, actual_lines), start=1
    ):
        want_parts = _parts(want)
        got_parts = _parts(got)
        if len(want_parts) != len(got_parts):
            mismatches.append(
                f"{label} line {lineno}: structure differs\n"
                f"  expected: {want}\n  actual:   {got}"
            )
            continue
        for (want_kind, want_value), (got_kind, got_value) in zip(
            want_parts, got_parts
        ):
            if want_kind != got_kind:
                mismatches.append(
                    f"{label} line {lineno}: {got_value!r} where "
                    f"{want_value!r} expected\n"
                    f"  expected: {want}\n  actual:   {got}"
                )
                break
            if want_kind == "num":
                if not math.isclose(
                    want_value, got_value, rel_tol=rel_tol, abs_tol=abs_tol
                ):
                    mismatches.append(
                        f"{label} line {lineno}: {got_value!r} != "
                        f"{want_value!r} (rel_tol={rel_tol:g})\n"
                        f"  expected: {want}\n  actual:   {got}"
                    )
                    break
            elif not _text_matches(want_value, got_value):
                mismatches.append(
                    f"{label} line {lineno}: text {got_value!r} != "
                    f"{want_value!r}\n"
                    f"  expected: {want}\n  actual:   {got}"
                )
                break
    return mismatches


def save_snapshot(path: Union[str, Path], record: Dict[str, Any]) -> Path:
    """Write one golden snapshot (sorted-key JSON, trailing newline)."""
    path = Path(path)
    payload = dict(record)
    payload["schema"] = SNAPSHOT_SCHEMA
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one golden snapshot, validating its schema and shape."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ExperimentError(
            f"no golden snapshot at {path} — run tools/regen_golden.py"
        )
    except json.JSONDecodeError as error:
        raise ExperimentError(f"unreadable golden snapshot {path}: {error}")
    if not isinstance(payload, dict) or "render" not in payload:
        raise ExperimentError(f"{path} is not a golden snapshot")
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise ExperimentError(
            f"golden snapshot {path} has schema {payload.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA} — run tools/regen_golden.py"
        )
    return payload
