"""Model-output guards — the firewall's last checkpoint before results
are journaled, cached or rendered.

Three guards, one per artifact that crosses a persistence boundary:

- :func:`guard_model` — an :class:`~repro.nvsim.model.LLCModel` about
  to drive a sweep (NaN/Inf/negative latency, energy, area, capacity;
  physical upper bounds on each);
- :func:`guard_counts` — :class:`~repro.sim.llc.LLCCounts` about to be
  written to the replay cache (non-negative, internally consistent);
- :func:`guard_result` — a :class:`~repro.sim.results.SimResult` about
  to be journaled to a checkpoint or reported (finite runtime and
  energy, consistent energy breakdown).

Plus :func:`guard_compression`, the count-sum extension for compressed
replays: the compressed/uncompressed write split must sum to the total
and the byte accounting must stay between full-size and the ratio-8
floor.

Plus the sweep-level invariant of the paper's equations (4)-(8),
:func:`check_sweep_models`: every model in a *fixed-capacity* sweep
shares one capacity; every model in a *fixed-area* sweep fits the
silicon budget (with the paper's own exemption: the smallest ladder
capacity is allowed to exceed it slightly — Jan_S's 1 MB case).

Guards never modify values — they only reject — so enabling them never
changes a passing run's output, and ``REPRO_VALIDATE=off`` is
byte-identical by construction.  A failed guard raises
:class:`~repro.errors.PlausibilityError` carrying the offending field,
value, violated bound and provenance chain.  Cost per guarded result
is a few dozen float comparisons — bounded well under the 2% strict-
mode budget that ``tests/validate/test_overhead.py`` pins.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Union

from repro.errors import PlausibilityError
from repro.obs import metrics as _metrics
from repro.validate.policy import Policy, resolve_policy

#: Physical upper bounds for LLC model outputs.  Generous by an order
#: of magnitude over anything in Table III — they exist to catch unit
#: mistakes (ns stored as s, pJ as J), not to police design quality.
MAX_LATENCY_S = 1e-3        # 1 ms; slowest Table III write is ~305 ns
MAX_ENERGY_J = 1e-5         # 10 uJ/access; Table III tops out ~375 nJ
                            # (Kang_P's fixed-capacity write energy)
MAX_LEAKAGE_W = 1e3         # 1 kW standby would be a unit error
MAX_AREA_MM2 = 1e5          # 10 cm^2 of LLC is not a cache
MAX_CAPACITY_BYTES = 1 << 40  # 1 TiB LLC

#: Fields of an LLCModel the guard range-checks, with their bound.
_MODEL_FIELDS = (
    ("tag_latency_s", MAX_LATENCY_S),
    ("read_latency_s", MAX_LATENCY_S),
    ("set_latency_s", MAX_LATENCY_S),
    ("reset_latency_s", MAX_LATENCY_S),
    ("hit_energy_j", MAX_ENERGY_J),
    ("miss_energy_j", MAX_ENERGY_J),
    ("write_energy_j", MAX_ENERGY_J),
    ("leakage_w", MAX_LEAKAGE_W),
    ("area_mm2", MAX_AREA_MM2),
)

_lenient_warned = False


def _fail(
    policy: Policy,
    subject: str,
    field: str,
    value: object,
    bound: str,
    provenance: str = "",
) -> None:
    """Reject one implausible value per the active policy."""
    global _lenient_warned
    _metrics.counter_add("validate.guard.violations")
    message = f"{subject}: {field}={value!r} violates {bound}"
    if provenance:
        message += f" (provenance: {provenance})"
    if policy is Policy.STRICT:
        raise PlausibilityError(
            message,
            subject=subject,
            field=field,
            value=value,
            bound=bound,
            provenance=provenance,
        )
    if not _lenient_warned:
        _lenient_warned = True
        import sys

        print(
            f"warning: {message} — continuing under lenient validation; "
            "further guard violations are counted, not printed",
            file=sys.stderr,
        )


def _bad_number(value: float) -> bool:
    return not isinstance(value, (int, float)) or not math.isfinite(value)


def guard_value(
    subject: str,
    field: str,
    value: float,
    lo: float = 0.0,
    hi: float = math.inf,
    provenance: str = "",
    policy: Union[Policy, str, None] = None,
) -> float:
    """Guard one scalar: finite and within ``[lo, hi]``.

    Returns the value unchanged so calls can be inlined into
    expressions.  The workhorse behind the composite guards, exposed
    for ad-hoc checks in experiment code.
    """
    policy = resolve_policy(policy)
    if not policy.active:
        return value
    if _bad_number(value):
        _fail(policy, subject, field, value, "finite-number requirement", provenance)
    elif not lo <= value <= hi:
        _fail(policy, subject, field, value, f"range [{lo:g}, {hi:g}]", provenance)
    return value


def guard_model(model, policy: Union[Policy, str, None] = None):
    """Reject an LLC model with impossible outputs; return it unchanged.

    Called by :func:`repro.nvsim.model.generate_llc_model` on every
    generated model and by the published-model lookup, so no sweep can
    start from a NaN latency or negative energy regardless of which
    source produced the model.
    """
    policy = resolve_policy(policy)
    if not policy.active:
        return model
    subject = f"LLC model {model.name} ({model.source})"
    provenance = f"source={model.source}"
    if (
        not isinstance(model.capacity_bytes, int)
        or not 0 < model.capacity_bytes <= MAX_CAPACITY_BYTES
    ):
        _fail(
            policy, subject, "capacity_bytes", model.capacity_bytes,
            f"range (0, {MAX_CAPACITY_BYTES}]", provenance,
        )
    for field, bound in _MODEL_FIELDS:
        value = getattr(model, field)
        if _bad_number(value):
            _fail(policy, subject, field, value,
                  "finite-number requirement", provenance)
        elif not 0.0 <= value <= bound:
            _fail(policy, subject, field, value,
                  f"range [0, {bound:g}]", provenance)
    return model


def guard_counts(counts, subject: str = "LLC replay",
                 policy: Union[Policy, str, None] = None):
    """Reject inconsistent LLC counts before they reach the replay cache.

    Checks every counter is a non-negative integer and the hit/miss
    split sums to the lookups that produced it.
    """
    policy = resolve_policy(policy)
    if not policy.active:
        return counts
    for field in (
        "read_lookups", "read_hits", "read_misses",
        "write_accesses", "write_hits", "write_misses", "dirty_evictions",
    ):
        value = getattr(counts, field)
        if not isinstance(value, int) or value < 0:
            _fail(policy, subject, field, value,
                  "non-negative integer requirement")
    if counts.read_hits + counts.read_misses != counts.read_lookups:
        _fail(
            policy, subject, "read_hits+read_misses",
            counts.read_hits + counts.read_misses,
            f"exact-sum invariant (read_lookups={counts.read_lookups})",
        )
    if counts.write_hits + counts.write_misses != counts.write_accesses:
        _fail(
            policy, subject, "write_hits+write_misses",
            counts.write_hits + counts.write_misses,
            f"exact-sum invariant (write_accesses={counts.write_accesses})",
        )
    if counts.dirty_evictions > counts.fills:
        _fail(policy, subject, "dirty_evictions", counts.dirty_evictions,
              f"at-most-fills invariant (fills={counts.fills})")
    return counts


def guard_compression(outcome, subject: str = "compressed replay",
                      policy: Union[Policy, str, None] = None):
    """Reject an inconsistent compressed-replay outcome.

    Extends the count-sum discipline of :func:`guard_counts` to the
    compressed/uncompressed write split of a
    :class:`~repro.techniques.replay.TechniqueOutcome`, and bounds the
    byte accounting by physics: no write programs more than the block,
    none fewer than an eighth of it (the hardest size class the
    compressor emits, ratio 8).
    """
    policy = resolve_policy(policy)
    if not policy.active:
        return outcome
    for field in ("write_bytes", "compressed_writes", "uncompressed_writes"):
        value = getattr(outcome, field)
        if not isinstance(value, int) or value < 0:
            _fail(policy, subject, field, value,
                  "non-negative integer requirement")
    total = outcome.wear.total_writes
    if outcome.compressed_writes + outcome.uncompressed_writes != total:
        _fail(
            policy, subject, "compressed_writes+uncompressed_writes",
            outcome.compressed_writes + outcome.uncompressed_writes,
            f"exact-sum invariant (total_writes={total})",
        )
    full_bytes = total * outcome.block_bytes
    if outcome.write_bytes > full_bytes:
        _fail(policy, subject, "write_bytes", outcome.write_bytes,
              f"at-most-full-size invariant ({full_bytes} bytes)")
    if 8 * outcome.write_bytes < full_bytes:
        _fail(policy, subject, "write_bytes", outcome.write_bytes,
              f"ratio-8 floor invariant (>= {full_bytes} / 8 bytes)")
    fraction = outcome.write_bytes_fraction
    if not 0.125 <= fraction <= 1.0:
        _fail(policy, subject, "write_bytes_fraction", fraction,
              "range [0.125, 1]")
    return outcome


def guard_result(result, policy: Union[Policy, str, None] = None):
    """Reject an implausible simulation result; return it unchanged.

    The checkpoint the tentpole names: runs on every assembled
    :class:`~repro.sim.results.SimResult` — serial, parallel-worker and
    resumed paths all converge on ``assemble_result`` — *before* the
    result can be journaled, cached or rendered.
    """
    policy = resolve_policy(policy)
    if not policy.active:
        return result
    subject = f"result {result.workload}/{result.llc_name}"
    provenance = f"model {result.llc_name}, configuration {result.configuration}"
    if _bad_number(result.runtime_s) or result.runtime_s < 0:
        _fail(policy, subject, "runtime_s", result.runtime_s,
              "finite non-negative requirement", provenance)
    energy = result.energy
    for field in ("hit_energy_j", "miss_energy_j",
                  "write_energy_j", "leakage_energy_j"):
        value = getattr(energy, field)
        if _bad_number(value) or value < 0:
            _fail(policy, subject, f"energy.{field}", value,
                  "finite non-negative requirement", provenance)
    if result.total_instructions < 0:
        _fail(policy, subject, "total_instructions",
              result.total_instructions, "non-negative requirement", provenance)
    return result


def check_sweep_models(
    models: Sequence,
    configuration: str,
    area_budget_mm2: Optional[float] = None,
    min_capacity_bytes: Optional[int] = None,
    policy: Union[Policy, str, None] = None,
) -> None:
    """The paper's configuration invariants (equations (4)-(8)).

    *fixed-capacity*: every model in the sweep shares one capacity (the
    comparison is per-byte meaningless otherwise).  *fixed-area*: every
    model's area fits ``area_budget_mm2`` — except a model already at
    the smallest ladder capacity (``min_capacity_bytes``), which the
    paper keeps despite overshooting (Jan_S at 1 MB / 9.17 mm^2).
    """
    policy = resolve_policy(policy)
    if not policy.active or not models:
        return
    if configuration == "fixed-capacity":
        capacity = models[0].capacity_bytes
        for model in models:
            if model.capacity_bytes != capacity:
                _fail(
                    policy, f"fixed-capacity sweep ({model.name})",
                    "capacity_bytes", model.capacity_bytes,
                    f"equal-capacity invariant ({models[0].name} has "
                    f"{capacity})", f"source={model.source}",
                )
    elif configuration == "fixed-area" and area_budget_mm2 is not None:
        # Published fixed-area models carry the measured baseline area
        # for every row, so allow a small tolerance over the budget.
        tolerance = 1.05 * area_budget_mm2
        for model in models:
            if model.area_mm2 > tolerance and (
                min_capacity_bytes is None
                or model.capacity_bytes > min_capacity_bytes
            ):
                _fail(
                    policy, f"fixed-area sweep ({model.name})",
                    "area_mm2", model.area_mm2,
                    f"area budget {area_budget_mm2:g} mm^2",
                    f"source={model.source}",
                )


def reset_lenient_warning() -> None:
    """Re-arm the once-per-process lenient warning (test hook)."""
    global _lenient_warned
    _lenient_warned = False
