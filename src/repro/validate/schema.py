"""Schema validation for user-supplied names and config mappings.

Two facilities the lookup boundaries share:

- :func:`did_you_mean` / :func:`unknown_key_message` — close-match
  suggestions (``difflib``) appended to every "unknown X" error, so a
  typo'd cell, workload, model or parameter name fails with the fix in
  the message;
- :func:`validate_keys` and :func:`architecture_from_mapping` — schema
  checks for dict-shaped configuration (e.g. sweep/architecture
  overrides loaded from JSON), rejecting unknown keys with suggestions
  and coercing values through the dataclass's own ``__post_init__``
  invariants.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, Mapping, Optional, Sequence, Type

from repro.errors import ConfigurationError, ReproError


def did_you_mean(name: str, candidates: Iterable[str]) -> Optional[str]:
    """The closest candidate to ``name``, or None when nothing is close."""
    matches = difflib.get_close_matches(
        str(name), [str(c) for c in candidates], n=1, cutoff=0.6
    )
    return matches[0] if matches else None


def unknown_key_message(
    kind: str, name: str, candidates: Sequence[str]
) -> str:
    """A uniform "unknown X" message with a suggestion and the full list."""
    suggestion = did_you_mean(name, candidates)
    hint = f" — did you mean {suggestion!r}?" if suggestion else ""
    known = ", ".join(sorted(str(c) for c in candidates))
    return f"unknown {kind} {name!r}{hint} (known: {known})"


def validate_keys(
    given: Iterable[str],
    allowed: Sequence[str],
    kind: str = "key",
    error: Type[ReproError] = ConfigurationError,
) -> None:
    """Reject any key outside ``allowed`` with a did-you-mean message."""
    allowed_set = set(allowed)
    for key in given:
        if key not in allowed_set:
            raise error(unknown_key_message(kind, key, list(allowed)))


def coerce_number(
    kind: str,
    value: object,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    integer: bool = False,
    error: Type[ReproError] = ConfigurationError,
) -> float:
    """Coerce a user-supplied number, rejecting junk with a clear message.

    Used by dict-shaped request boundaries (the experiment service's job
    specs, config files): ``value`` must parse as a finite number,
    optionally an integer, and fall inside the closed ``[lo, hi]``
    bounds.  Returns the coerced float (or int when ``integer``).
    """
    import math

    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise error(f"{kind} must be a number, got {value!r}")
    try:
        number = float(value)
    except ValueError:
        raise error(f"{kind} must be a number, got {value!r}") from None
    if not math.isfinite(number):
        raise error(f"{kind} must be finite, got {value!r}")
    if integer:
        if number != int(number):
            raise error(f"{kind} must be an integer, got {value!r}")
        number = int(number)
    if lo is not None and number < lo:
        raise error(f"{kind} must be >= {lo:g}, got {number:g}")
    if hi is not None and number > hi:
        raise error(f"{kind} must be <= {hi:g}, got {number:g}")
    return number


def architecture_from_mapping(overrides: Mapping[str, object]):
    """Build an :class:`~repro.sim.config.ArchitectureConfig` from a
    dict of field overrides (the shape sweep/config files use).

    Unknown keys fail with a suggestion; value errors surface as the
    dataclass's own :class:`~repro.errors.ConfigurationError`.  Nested
    cache levels may be given as ``{"capacity_bytes": ..., ...}`` dicts.
    """
    import dataclasses

    from repro.sim.config import ArchitectureConfig, CacheLevelConfig, DRAMConfig

    fields = {f.name: f for f in dataclasses.fields(ArchitectureConfig)}
    validate_keys(overrides.keys(), list(fields), kind="architecture field")
    nested: Dict[str, type] = {"l1d": CacheLevelConfig, "l2": CacheLevelConfig,
                               "dram": DRAMConfig}
    resolved = {}
    for key, value in overrides.items():
        cls = nested.get(key)
        if cls is not None and isinstance(value, Mapping):
            sub_fields = [f.name for f in dataclasses.fields(cls)]
            validate_keys(value.keys(), sub_fields, kind=f"{key} field")
            value = cls(**value)
        resolved[key] = value
    try:
        return ArchitectureConfig(**resolved)
    except TypeError as error:
        raise ConfigurationError(f"invalid architecture overrides: {error}")
