"""``repro-cli doctor`` — self-check for environment, library and model.

Four check classes, run in order, each mapped to a documented exit
code (``docs/CONFIGURATION.md``, "Exit codes"):

- **environment** (exit :data:`EXIT_ENVIRONMENT`): interpreter/numpy
  versions, replay-cache directory writability, fsync support for the
  checkpoint journal, worker-process spawn;
- **cell library** (exit :data:`EXIT_CELLS`): every Table II cell
  passes completeness (:func:`~repro.cells.validation.require_complete`
  after heuristic 1) and strict plausibility
  (:func:`~repro.cells.validation.require_plausible`);
- **model generation** (exit :data:`EXIT_MODELS`): the circuit model
  produces a guard-clean LLC model for every NVM cell, and the
  published Table III models pass the model guard and the
  fixed-capacity/fixed-area sweep invariants;
- **golden sweep** (exit :data:`EXIT_SWEEP`): a tiny deterministic
  trace runs end to end — private filter, LLC replay, timing, energy —
  with every result passing :func:`~repro.validate.guard.guard_result`
  and the speedup/energy ratios landing in a sane range.

``repro-cli doctor`` exits 0 when every check passes; otherwise it
exits with the code of the *first failing class* and prints one
``FAIL`` line per failed check (structured, no tracebacks).
"""

from __future__ import annotations

import os
import sys
import tempfile
from typing import Callable, List, Tuple

#: Exit codes per failure class (documented in docs/CONFIGURATION.md).
EXIT_ENVIRONMENT = 10
EXIT_CELLS = 11
EXIT_MODELS = 12
EXIT_SWEEP = 13

#: Golden-sweep inputs: small enough to run in about a second, below
#: the replay cache's minimum-accesses threshold so the check never
#: depends on (or pollutes) cache state.
GOLDEN_WORKLOAD = "leela"
GOLDEN_ACCESSES = 8000
GOLDEN_MODEL = "Xue_S"


def _worker_ping(value: int) -> int:
    """Module-level (hence picklable) probe for the spawn check."""
    return value + 1


def _check_interpreter() -> str:
    import numpy

    return (
        f"python {sys.version.split()[0]}, numpy {numpy.__version__}"
    )


def _check_cache_dir() -> str:
    from repro.sim.replay_cache import ReplayCache

    cache = ReplayCache()
    if not cache.enabled:
        return f"replay cache disabled ({cache.root} untouched)"
    cache.root.mkdir(parents=True, exist_ok=True)
    probe = cache.root / ".doctor-probe"
    probe.write_bytes(b"ok")
    probe.unlink()
    return f"replay cache writable at {cache.root}"


def _check_fsync() -> str:
    fd, path = tempfile.mkstemp(prefix="repro-doctor-")
    try:
        os.write(fd, b"journal-probe\n")
        os.fsync(fd)
    finally:
        os.close(fd)
        os.unlink(path)
    return "journal fsync supported"


def _check_worker_spawn() -> str:
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=1) as pool:
        result = pool.submit(_worker_ping, 41).result(timeout=120)
    if result != 42:
        raise RuntimeError(f"worker returned {result!r}, expected 42")
    return "worker process spawn ok"


def _check_cell_library() -> str:
    from repro.cells.heuristics import apply_electrical_properties
    from repro.cells.library import ALL_CELLS
    from repro.cells.validation import require_complete, require_plausible

    for cell in ALL_CELLS:
        filled = apply_electrical_properties(cell)
        if cell.cell_class.is_nvm:
            require_complete(filled)
        require_plausible(filled, policy="strict")
    return f"{len(ALL_CELLS)} cells complete and plausible"


def _check_generated_models() -> str:
    from repro import units
    from repro.cells.library import NVM_CELLS
    from repro.nvsim.config import CacheDesign
    from repro.nvsim.model import generate_llc_model
    from repro.validate.guard import guard_model

    design = CacheDesign(capacity_bytes=2 * units.MB)
    for cell in NVM_CELLS:
        guard_model(generate_llc_model(cell, design), policy="strict")
    return f"{len(NVM_CELLS)} generated models guard-clean"


def _check_published_models() -> str:
    from repro.nvsim.config import FIXED_AREA_BUDGET_MM2
    from repro.nvsim.published import published_models
    from repro.nvsim.sweep import CAPACITY_LADDER
    from repro.validate.guard import check_sweep_models, guard_model

    count = 0
    for configuration in ("fixed-capacity", "fixed-area"):
        models = published_models(configuration)
        for model in models:
            guard_model(model, policy="strict")
            count += 1
        check_sweep_models(
            models, configuration,
            area_budget_mm2=FIXED_AREA_BUDGET_MM2,
            min_capacity_bytes=CAPACITY_LADDER[0],
            policy="strict",
        )
    return f"{count} published models guard-clean, invariants hold"


def _check_golden_sweep() -> str:
    from repro.nvsim.published import published_model, sram_baseline
    from repro.sim.results import normalize
    from repro.sim.system import SimulationSession
    from repro.validate.guard import guard_result
    from repro.workloads.generators import generate_trace

    trace = generate_trace(GOLDEN_WORKLOAD, n_accesses=GOLDEN_ACCESSES)
    session = SimulationSession(trace)
    baseline = guard_result(session.run(sram_baseline()), policy="strict")
    result = guard_result(
        session.run(published_model(GOLDEN_MODEL)), policy="strict"
    )
    norm = normalize(result, baseline)
    if not 0.01 < norm.speedup < 100.0:
        raise RuntimeError(f"golden speedup {norm.speedup:.3f} out of range")
    if not 0.0 < norm.energy_ratio < 1000.0:
        raise RuntimeError(
            f"golden energy ratio {norm.energy_ratio:.3f} out of range"
        )
    return (
        f"{GOLDEN_WORKLOAD}/{GOLDEN_MODEL} sweep ok "
        f"(speedup {norm.speedup:.2f}, energy {norm.energy_ratio:.2f}x)"
    )


#: ``(class exit code, check name, check callable)`` in run order.
CHECKS: List[Tuple[int, str, Callable[[], str]]] = [
    (EXIT_ENVIRONMENT, "interpreter", _check_interpreter),
    (EXIT_ENVIRONMENT, "cache dir", _check_cache_dir),
    (EXIT_ENVIRONMENT, "journal fsync", _check_fsync),
    (EXIT_ENVIRONMENT, "worker spawn", _check_worker_spawn),
    (EXIT_CELLS, "cell library", _check_cell_library),
    (EXIT_MODELS, "generated models", _check_generated_models),
    (EXIT_MODELS, "published models", _check_published_models),
    (EXIT_SWEEP, "golden sweep", _check_golden_sweep),
]


def run_doctor(stream=None) -> int:
    """Run every doctor check; return 0 or the first failing class code.

    Prints one line per check; failures show the error class and
    message, never a traceback.
    """
    if stream is None:
        stream = sys.stdout
    width = max(len(name) for _, name, _ in CHECKS)
    first_failure = 0
    for exit_code, name, check in CHECKS:
        try:
            detail = check()
        except Exception as error:
            stream.write(
                f"doctor: {name:<{width}}  FAIL "
                f"[{type(error).__name__}] {error}\n"
            )
            if first_failure == 0:
                first_failure = exit_code
        else:
            stream.write(f"doctor: {name:<{width}}  ok — {detail}\n")
    verdict = "healthy" if first_failure == 0 else f"exit {first_failure}"
    stream.write(f"doctor: {verdict}\n")
    return first_failure
