"""The LLC model — the interface between circuit and system simulation.

An :class:`LLCModel` is what the paper's Table III tabulates: everything
the system simulator needs to know about one LLC technology at one
design point.  Models come from two sources:

- :func:`generate_llc_model` — the library's simplified NVSim-equivalent
  circuit model (auditable methodology);
- :mod:`repro.nvsim.published` — the paper's published Table III values
  (exact experiment inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.cells.base import CellClass, NVMCell
from repro.cells.heuristics import apply_electrical_properties
from repro.cells.validation import require_complete, require_plausible
from repro.errors import ModelGenerationError
from repro.nvsim.area import compute_area
from repro.nvsim.config import CacheDesign
from repro.nvsim.energy import compute_energy
from repro.nvsim.timing import compute_timing


@dataclass(frozen=True)
class LLCModel:
    """A complete LLC technology model (one column of Table III).

    Latencies in seconds, energies in joules, leakage in watts, area in
    mm^2 (kept in Table III's unit since it is only reported, never
    integrated).
    """

    name: str
    cell_class: CellClass
    capacity_bytes: int
    area_mm2: float
    tag_latency_s: float
    read_latency_s: float
    set_latency_s: float
    reset_latency_s: float
    hit_energy_j: float
    miss_energy_j: float
    write_energy_j: float
    leakage_w: float
    source: str = "generated"

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ModelGenerationError(f"{self.name}: nonpositive capacity")
        for attr in (
            "area_mm2",
            "tag_latency_s",
            "read_latency_s",
            "set_latency_s",
            "reset_latency_s",
            "hit_energy_j",
            "miss_energy_j",
            "write_energy_j",
        ):
            if getattr(self, attr) < 0:
                raise ModelGenerationError(f"{self.name}: negative {attr}")

    # -- convenience ----------------------------------------------------

    @property
    def is_sram(self) -> bool:
        """True for the SRAM baseline model."""
        return self.cell_class is CellClass.SRAM

    @property
    def write_latency_s(self) -> float:
        """Worst-case write latency (max of set and reset)."""
        return max(self.set_latency_s, self.reset_latency_s)

    @property
    def mean_write_latency_s(self) -> float:
        """Mean of set and reset latency — the expected block write cost
        when written bits are an even set/reset mix."""
        return 0.5 * (self.set_latency_s + self.reset_latency_s)

    @property
    def capacity_mb(self) -> float:
        """Capacity in MiB."""
        return units.to_mb(self.capacity_bytes)

    @property
    def write_read_latency_ratio(self) -> float:
        """Write/read latency asymmetry."""
        return self.write_latency_s / self.read_latency_s

    @property
    def write_hit_energy_ratio(self) -> float:
        """Write/hit energy asymmetry."""
        return self.write_energy_j / self.hit_energy_j

    def scaled_capacity(self, capacity_bytes: int) -> "LLCModel":
        """A copy at a different capacity with first-order rescaling.

        Leakage scales linearly with bits; latencies and energies are
        left unchanged (second-order for modest scale factors).  Used by
        tests and the core-sweep sensitivity study, not by the published
        fixed-area models (which carry their own measured values).
        """
        factor = capacity_bytes / self.capacity_bytes
        return replace(
            self,
            capacity_bytes=capacity_bytes,
            leakage_w=self.leakage_w * factor,
            area_mm2=self.area_mm2 * factor,
            source=f"{self.source}+scaled",
        )


def generate_llc_model(cell: NVMCell, design: CacheDesign) -> LLCModel:
    """Run the circuit model on a cell and produce its LLC model.

    Heuristic 1 (electrical properties) is applied first, closing any
    gaps derivable from reported parameters — e.g. PCRAM set/reset
    energies from currents and pulses via equation (2).  The cell must
    then pass :func:`repro.cells.validation.require_complete` and — so
    a heuristic-derived value that is physically impossible fails here,
    naming the heuristic, rather than skewing a sweep —
    :func:`repro.cells.validation.require_plausible` under the active
    validation policy.  The finished model passes
    :func:`repro.validate.guard.guard_model` before being returned.
    """
    from repro.validate.guard import guard_model

    cell = apply_electrical_properties(cell)
    require_complete(cell)
    require_plausible(cell)
    timing = compute_timing(cell, design)
    energy = compute_energy(cell, design)
    area = compute_area(cell, design)
    set_latency = timing.set_latency_s
    reset_latency = timing.reset_latency_s
    if cell.cell_class is not CellClass.PCRAM:
        # Only PCRAM's set/reset differ enough for Table III to split
        # them; other classes report a single write latency.
        worst = max(set_latency, reset_latency)
        set_latency = reset_latency = worst
    return guard_model(LLCModel(
        name=cell.display_name,
        cell_class=cell.cell_class,
        capacity_bytes=design.capacity_bytes,
        area_mm2=area.total_mm2,
        tag_latency_s=timing.tag_latency_s,
        read_latency_s=timing.read_latency_s,
        set_latency_s=set_latency,
        reset_latency_s=reset_latency,
        hit_energy_j=energy.hit_energy_j,
        miss_energy_j=energy.miss_energy_j,
        write_energy_j=energy.write_energy_j,
        leakage_w=energy.leakage_w,
        source="generated",
    ))
