"""Area model for the circuit model.

Area = data cells / placement efficiency + per-cell periphery + tag
array, all in the cell's own process.  Equation (3) converts the cited
cell size in F^2 to physical area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.cells.base import NVMCell
from repro.nvsim import calibration as cal
from repro.nvsim.config import CacheDesign


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of an LLC design, in square metres."""

    data_array_m2: float
    periphery_m2: float
    tag_array_m2: float

    @property
    def total_m2(self) -> float:
        """Total silicon area."""
        return self.data_array_m2 + self.periphery_m2 + self.tag_array_m2

    @property
    def total_mm2(self) -> float:
        """Total silicon area in mm^2 (Table III's unit)."""
        return units.to_mm2(self.total_m2)


def compute_area(cell: NVMCell, design: CacheDesign) -> AreaBreakdown:
    """Area breakdown for a cell/design pair."""
    cell_area = cell.physical_cell_area_m2()
    feature = cell.value("process_nm") * units.NM
    periphery_per_cell = cal.PERIPHERY_F2_PER_CELL * feature * feature

    data_cells = design.data_bits // cell.bits_per_cell
    data_array = data_cells * cell_area / cal.ARRAY_EFFICIENCY
    periphery = data_cells * periphery_per_cell

    tag_cells = design.tag_bits // cell.bits_per_cell
    tag_array = tag_cells * (
        cell_area / cal.ARRAY_EFFICIENCY + periphery_per_cell
    )

    return AreaBreakdown(
        data_array_m2=data_array,
        periphery_m2=periphery,
        tag_array_m2=tag_array,
    )
