"""Systematic generated-vs-published model validation.

DESIGN.md's fidelity bar for the circuit-model substitution is stated in
two parts: per-quantity ratios inside a regime band, and preserved
orderings across technologies.  This module computes both for the whole
library in one call, so the claim is a report rather than a scatter of
test assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import units
from repro.cells.library import NVM_CELLS, SRAM
from repro.correlate.stats import spearman
from repro.errors import ModelGenerationError
from repro.nvsim.config import CacheDesign
from repro.nvsim.model import LLCModel, generate_llc_model
from repro.nvsim.published import published_models

#: Quantities the validation compares.
QUANTITIES: Tuple[str, ...] = (
    "area_mm2",
    "tag_latency_s",
    "read_latency_s",
    "write_latency_s",
    "hit_energy_j",
    "miss_energy_j",
    "write_energy_j",
    "leakage_w",
)


@dataclass(frozen=True)
class FidelityReport:
    """Ratio bands and ordering agreement for one configuration."""

    configuration: str
    names: Tuple[str, ...]
    ratios: Dict[str, np.ndarray]  # quantity -> generated/published per model

    def ratio_band(self, quantity: str) -> Tuple[float, float]:
        """(min, max) generated/published ratio for a quantity."""
        values = self.ratios[quantity]
        return float(values.min()), float(values.max())

    def within_band(self, quantity: str, factor: float = 5.0) -> bool:
        """Whether every model's ratio lies within [1/factor, factor]."""
        low, high = self.ratio_band(quantity)
        return low > 1.0 / factor and high < factor

    def ordering_agreement(
        self, quantity: str, generated: Dict[str, float], published: Dict[str, float]
    ) -> float:
        """Spearman agreement of the cross-technology ordering."""
        g = np.array([generated[name] for name in self.names])
        p = np.array([published[name] for name in self.names])
        return spearman(g, p)

    def geometric_mean_error(self, quantity: str) -> float:
        """Geomean of |log-ratio| — a single fidelity scalar per quantity."""
        values = np.abs(np.log(self.ratios[quantity]))
        return float(np.exp(values.mean()))


def validate_fidelity(configuration: str = "fixed-capacity") -> FidelityReport:
    """Generate every library cell's model and compare with Table III.

    Fixed-capacity only compares at 2 MB; the fixed-area comparison
    would entangle the capacity solver with the per-quantity ratios, so
    callers wanting it should compare capacities separately (see
    :mod:`repro.nvsim.sweep`).
    """
    if configuration != "fixed-capacity":
        raise ModelGenerationError(
            "fidelity validation is defined for fixed-capacity"
        )
    design = CacheDesign(capacity_bytes=2 * units.MB)
    published = {m.name: m for m in published_models(configuration)}
    cells = list(NVM_CELLS) + [SRAM]
    names = tuple(cell.display_name for cell in cells)
    generated: Dict[str, LLCModel] = {
        cell.display_name: generate_llc_model(cell, design) for cell in cells
    }
    ratios: Dict[str, np.ndarray] = {}
    for quantity in QUANTITIES:
        ratios[quantity] = np.array(
            [
                getattr(generated[name], quantity)
                / getattr(published[name], quantity)
                for name in names
            ]
        )
    return FidelityReport(
        configuration=configuration, names=names, ratios=ratios
    )


def ordering_agreements(report: FidelityReport) -> Dict[str, float]:
    """Spearman ordering agreement per quantity (generated vs published)."""
    design = CacheDesign(capacity_bytes=2 * units.MB)
    published = {m.name: m for m in published_models(report.configuration)}
    cells = list(NVM_CELLS) + [SRAM]
    generated = {
        cell.display_name: generate_llc_model(cell, design) for cell in cells
    }
    out: Dict[str, float] = {}
    for quantity in QUANTITIES:
        out[quantity] = report.ordering_agreement(
            quantity,
            {name: getattr(generated[name], quantity) for name in report.names},
            {name: getattr(published[name], quantity) for name in report.names},
        )
    return out
