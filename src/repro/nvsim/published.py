"""The paper's published Table III LLC models, verbatim.

These are the exact values the paper's Gainestown simulations consumed,
for both configurations:

- *fixed-capacity*: every LLC is 2 MB (cost-limited design);
- *fixed-area*: every LLC fits the SRAM baseline's 6.55 mm^2 budget and
  takes whatever capacity that buys (capacity-limited design).

Latencies were published in ns, energies in nJ, leakage in W, area in
mm^2; constructors below convert to SI.  For PCRAM the data write
latency is ``set/reset``; for other classes the single published value
is used for both.

One transcription note: the fixed-area table prints only Chen's reset
latency (61.17 ns) legibly; its set latency is reconstructed as 81.17 ns
by carrying the fixed-capacity set-reset gap (80.491 - 60.491 = 20 ns),
which matches the PCRAM set/reset structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import units
from repro.cells.base import CellClass
from repro.errors import ModelGenerationError
from repro.nvsim.model import LLCModel

_CLASS_OF = {
    "Oh_P": CellClass.PCRAM,
    "Chen_P": CellClass.PCRAM,
    "Kang_P": CellClass.PCRAM,
    "Close_P": CellClass.PCRAM,
    "Chung_S": CellClass.STTRAM,
    "Jan_S": CellClass.STTRAM,
    "Umeki_S": CellClass.STTRAM,
    "Xue_S": CellClass.STTRAM,
    "Hayakawa_R": CellClass.RRAM,
    "Zhang_R": CellClass.RRAM,
    "SRAM": CellClass.SRAM,
}


def _model(
    name: str,
    capacity_mb: float,
    area_mm2: float,
    tag_ns: float,
    read_ns: float,
    set_ns: float,
    hit_nj: float,
    miss_nj: float,
    write_nj: float,
    leak_w: float,
    reset_ns: Optional[float] = None,
    source: str = "published-table3",
) -> LLCModel:
    return LLCModel(
        name=name,
        cell_class=_CLASS_OF[name],
        capacity_bytes=int(capacity_mb * units.MB),
        area_mm2=area_mm2,
        tag_latency_s=tag_ns * units.NS,
        read_latency_s=read_ns * units.NS,
        set_latency_s=set_ns * units.NS,
        reset_latency_s=(reset_ns if reset_ns is not None else set_ns) * units.NS,
        hit_energy_j=hit_nj * units.NJ,
        miss_energy_j=miss_nj * units.NJ,
        write_energy_j=write_nj * units.NJ,
        leakage_w=leak_w,
        source=source,
    )


#: Table III, top: fixed-capacity (2 MB) LLC models.
FIXED_CAPACITY: List[LLCModel] = [
    _model("Oh_P", 2, 6.847, 0.740, 1.907, 181.206, 0.840, 0.042, 225.413, 0.062, reset_ns=11.206),
    _model("Chen_P", 2, 4.104, 0.604, 0.607, 80.491, 0.421, 0.025, 34.108, 0.071, reset_ns=60.491),
    _model("Kang_P", 2, 4.591, 0.656, 1.497, 301.018, 0.678, 0.033, 375.073, 0.061, reset_ns=51.018),
    _model("Close_P", 2, 2.855, 0.582, 0.820, 20.681, 0.437, 0.023, 51.116, 0.039, reset_ns=20.681),
    _model("Chung_S", 2, 1.452, 1.240, 1.763, 11.751, 0.209, 0.082, 1.332, 0.166),
    _model("Jan_S", 2, 9.171, 1.423, 3.072, 7.878, 0.188, 0.077, 2.305, 0.048),
    _model("Umeki_S", 2, 4.348, 1.208, 2.715, 11.916, 0.173, 0.058, 1.644, 0.295),
    _model("Xue_S", 2, 1.585, 1.156, 2.878, 4.038, 0.251, 0.121, 0.597, 0.115),
    _model("Hayakawa_R", 2, 0.915, 1.396, 1.722, 20.716, 0.263, 0.078, 0.952, 0.194),
    _model("Zhang_R", 2, 0.307, 1.722, 2.160, 300.834, 0.217, 0.086, 0.523, 0.151),
    _model("SRAM", 2, 6.548, 0.439, 1.234, 0.515, 0.565, 0.011, 0.537, 3.438),
]

#: The fixed-area silicon budget, mm^2 (the SRAM baseline's area).
FIXED_AREA_BUDGET_MM2 = 6.548

#: Table III, bottom: fixed-area (6.55 mm^2) LLC models.
FIXED_AREA: List[LLCModel] = [
    _model("Oh_P", 2, 6.548, 0.740, 1.909, 181.206, 0.840, 0.042, 225.413, 0.062, reset_ns=11.206),
    _model("Chen_P", 4, 6.548, 0.607, 1.428, 81.170, 0.496, 0.030, 33.599, 0.100, reset_ns=61.170),
    _model("Kang_P", 2, 6.548, 0.656, 1.497, 301.018, 0.678, 0.033, 375.073, 0.061, reset_ns=51.018),
    _model("Close_P", 4, 6.548, 0.581, 0.789, 20.460, 1.003, 0.029, 50.912, 0.137, reset_ns=20.460),
    _model("Chung_S", 8, 6.548, 1.283, 3.262, 13.088, 0.457, 0.083, 1.656, 0.661),
    _model("Jan_S", 1, 6.548, 1.288, 2.074, 6.170, 0.187, 0.080, 1.780, 0.025),
    _model("Umeki_S", 2, 6.548, 1.208, 2.715, 11.916, 0.173, 0.058, 1.644, 0.295),
    _model("Xue_S", 8, 6.548, 1.229, 3.378, 3.928, 0.683, 0.123, 0.912, 0.828),
    _model("Hayakawa_R", 32, 6.548, 1.690, 2.536, 20.735, 0.715, 0.088, 1.458, 3.896),
    _model("Zhang_R", 128, 6.548, 2.392, 9.537, 304.936, 0.605, 0.089, 0.921, 9.000),
    _model("SRAM", 2, 6.548, 0.439, 1.234, 0.515, 0.565, 0.011, 0.537, 3.438),
]

_FIXED_CAPACITY_BY_NAME: Dict[str, LLCModel] = {m.name: m for m in FIXED_CAPACITY}
_FIXED_AREA_BY_NAME: Dict[str, LLCModel] = {m.name: m for m in FIXED_AREA}

#: Configuration names accepted by :func:`published_model`.
CONFIGURATIONS = ("fixed-capacity", "fixed-area")


def published_models(configuration: str) -> List[LLCModel]:
    """All Table III models for one configuration, in table order."""
    if configuration == "fixed-capacity":
        return list(FIXED_CAPACITY)
    if configuration == "fixed-area":
        return list(FIXED_AREA)
    raise ModelGenerationError(
        f"unknown configuration {configuration!r}; expected one of {CONFIGURATIONS}"
    )


def published_model(name: str, configuration: str = "fixed-capacity") -> LLCModel:
    """One Table III model by display name (e.g. ``"Xue_S"``)."""
    table = (
        _FIXED_CAPACITY_BY_NAME
        if configuration == "fixed-capacity"
        else _FIXED_AREA_BY_NAME
        if configuration == "fixed-area"
        else None
    )
    if table is None:
        raise ModelGenerationError(
            f"unknown configuration {configuration!r}; expected one of {CONFIGURATIONS}"
        )
    model = table.get(name)
    if model is None:
        from repro.validate.schema import unknown_key_message

        raise ModelGenerationError(
            unknown_key_message("LLC model", name, list(table))
        )
    from repro.validate.guard import guard_model

    return guard_model(model)


def sram_baseline(configuration: str = "fixed-capacity") -> LLCModel:
    """The 2 MB 45 nm SRAM baseline model."""
    return published_model("SRAM", configuration)


def nvm_models(configuration: str) -> List[LLCModel]:
    """All published NVM models (everything except SRAM)."""
    return [m for m in published_models(configuration) if not m.is_sram]
