"""Cache design-point configuration for the circuit model.

A :class:`CacheDesign` describes the organisational knobs the paper's
NVSim runs used (Section IV, Table IV): a 16-way, 64-byte-block, shared
LLC with H-tree routed banks.  The circuit model consumes a design plus
an :class:`~repro.cells.NVMCell` and produces an
:class:`~repro.nvsim.model.LLCModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheDesign:
    """Organisational parameters of an LLC design point.

    Attributes
    ----------
    capacity_bytes:
        Total data capacity in bytes.
    block_bytes:
        Cache block (line) size in bytes; the paper uses 64.
    associativity:
        Set associativity; the paper's LLC is 16-way.
    mat_bits:
        Target number of data bits per mat (subarray).  The organisation
        solver picks the mat count from this; 512x512 is NVSim's default
        neighbourhood.
    tag_bits_per_block:
        Width of one tag entry including state bits.
    """

    capacity_bytes: int
    block_bytes: int = 64
    associativity: int = 16
    mat_bits: int = 512 * 512
    tag_bits_per_block: int = 40

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if not _is_power_of_two(self.block_bytes):
            raise ConfigurationError("block size must be a power of two")
        if not _is_power_of_two(self.associativity):
            raise ConfigurationError("associativity must be a power of two")
        if self.capacity_bytes % (self.block_bytes * self.associativity):
            raise ConfigurationError(
                "capacity must be a whole number of sets "
                f"(capacity={self.capacity_bytes}, block={self.block_bytes}, "
                f"assoc={self.associativity})"
            )
        if self.mat_bits < 4096:
            raise ConfigurationError("mats below 4 Kbit are not modelled")

    @property
    def n_blocks(self) -> int:
        """Number of cache blocks."""
        return self.capacity_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_blocks // self.associativity

    @property
    def data_bits(self) -> int:
        """Total data-array bits."""
        return self.capacity_bytes * 8

    @property
    def tag_bits(self) -> int:
        """Total tag-array bits."""
        return self.n_blocks * self.tag_bits_per_block

    @property
    def capacity_mb(self) -> float:
        """Capacity in MiB."""
        return units.to_mb(self.capacity_bytes)


#: The paper's baseline LLC design: 2 MB, 64 B blocks, 16-way.
GAINESTOWN_LLC_DESIGN = CacheDesign(capacity_bytes=2 * units.MB)

#: The fixed-area budget (mm^2) — the 2 MB 45 nm SRAM baseline's area.
FIXED_AREA_BUDGET_MM2 = 6.548
