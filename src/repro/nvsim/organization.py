"""Mat/bank organisation solver for the circuit model.

NVSim organises a memory as a grid of *mats* (self-contained subarrays
with local decoders and sense amplifiers) connected by an H-tree.  This
module picks a mat grid for a :class:`~repro.nvsim.config.CacheDesign`
and computes the physical quantities the timing/energy/area models need:
mat dimensions in cells, H-tree depth, and edge lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.cells.base import NVMCell
from repro.errors import ModelGenerationError
from repro.nvsim.config import CacheDesign


@dataclass(frozen=True)
class Organization:
    """Solved physical organisation of a cache data array.

    Attributes
    ----------
    n_mats:
        Number of mats (power of two).
    mat_rows, mat_cols:
        Cell-array dimensions of one mat, in cells.
    htree_levels:
        Depth of the H-tree connecting the mats (0 for a single mat).
    mat_edge_m:
        Physical edge length of one (square-ish) mat in metres.
    array_edge_m:
        Physical edge length of the whole data array in metres.
    """

    n_mats: int
    mat_rows: int
    mat_cols: int
    htree_levels: int
    mat_edge_m: float
    array_edge_m: float

    @property
    def bits_per_mat(self) -> int:
        """Data bits stored in one mat."""
        return self.mat_rows * self.mat_cols


def _next_power_of_two(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def solve_organization(cell: NVMCell, design: CacheDesign) -> Organization:
    """Choose a mat grid for the design and compute physical dimensions.

    The solver targets ``design.mat_bits`` cells per mat, yielding an
    H-tree whose depth grows with capacity — which is what makes large
    fixed-area NVM caches slower to traverse (paper Table III, bottom).
    """
    total_cells = design.data_bits // cell.bits_per_cell
    if total_cells <= 0:
        raise ModelGenerationError("design has no data bits")

    n_mats = _next_power_of_two(max(1, round(total_cells / design.mat_bits)))
    cells_per_mat = math.ceil(total_cells / n_mats)
    rows = _next_power_of_two(int(math.sqrt(cells_per_mat)))
    cols = _next_power_of_two(math.ceil(cells_per_mat / rows))

    # Physical dimensions from the cell footprint.  Mats are modelled as
    # square with area = cells * cell_area / efficiency; the efficiency
    # accounts for local decoders and sense amps inside the mat.
    cell_area = cell.physical_cell_area_m2()
    mat_area = rows * cols * cell_area / 0.7
    mat_edge = math.sqrt(mat_area)
    # H-tree: each level doubles the tiled edge in one dimension.
    levels = max(0, int(math.log2(n_mats)))
    array_edge = mat_edge * math.sqrt(n_mats)

    return Organization(
        n_mats=n_mats,
        mat_rows=rows,
        mat_cols=cols,
        htree_levels=levels,
        mat_edge_m=mat_edge,
        array_edge_m=array_edge,
    )


def htree_wire_length_m(org: Organization) -> float:
    """Total one-way H-tree wire length from the array port to a mat.

    Each H-tree level spans half the remaining array edge; summing the
    geometric series gives roughly one array edge of wire.
    """
    length = 0.0
    span = org.array_edge_m / 2.0
    for _ in range(org.htree_levels):
        length += span
        span /= 2.0
    return length
