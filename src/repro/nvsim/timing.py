"""Latency model: equations (4)-(5) plus mat-level timing.

The paper models a parallel-access LLC with H-tree routing:

- ``t_read  ~ 2 * t_htree + t_read_mat``   (request in, data out)
- ``t_write ~ 1 * t_htree + t_write_mat``  (write data rides the request)

``t_htree`` and the mat latencies come from the organisation solver and
the class calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.base import CellClass, NVMCell
from repro.nvsim import calibration as cal
from repro.nvsim.config import CacheDesign
from repro.nvsim.organization import Organization, htree_wire_length_m, solve_organization


@dataclass(frozen=True)
class TimingBreakdown:
    """Component latencies of one LLC design (seconds).

    ``write_latency_s`` is the worst of set/reset; the set/reset split is
    kept for PCRAM, whose two operations differ by an order of magnitude
    (Table III reports them separately).
    """

    tag_latency_s: float
    htree_s: float
    read_mat_s: float
    read_latency_s: float
    set_latency_s: float
    reset_latency_s: float

    @property
    def write_latency_s(self) -> float:
        """Worst-case data write latency (max of set and reset)."""
        return max(self.set_latency_s, self.reset_latency_s)


def htree_latency(org: Organization) -> float:
    """One-way H-tree traversal latency in seconds."""
    return htree_wire_length_m(org) * cal.WIRE_DELAY_S_PER_M


def decode_latency(cell: NVMCell, org: Organization) -> float:
    """Wordline decode + drive latency for one mat access."""
    process_scale = cell.value("process_nm") / 45.0
    return cal.DECODE_S_PER_ROW * org.mat_rows * process_scale


def sense_latency(cell: NVMCell) -> float:
    """Sense-amplifier resolution time for the cell's read mechanism.

    PCRAM senses a read current: smaller current, slower resolution.
    STTRAM/RRAM sense a voltage division: lower read voltage, smaller
    signal, slower resolution (this is why Jan, read at 0.08 V, has the
    slowest reads in Table III despite fast writes).
    """
    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    base = constants.sense_time_s
    if cell.is_mlc:
        # Multi-level cells resolve two bits with staged references.
        base *= cal.MLC_SENSE_PENALTY
    if cell.cell_class is CellClass.PCRAM:
        current = cell.value("read_current_ua")
        return base * (cal.PCRAM_SENSE_REF_UA / current)
    if cell.cell_class in (CellClass.STTRAM, CellClass.RRAM):
        voltage = cell.value("read_voltage_v")
        return base * (cal.SENSE_REF_V / voltage) ** cal.SENSE_VOLTAGE_EXPONENT
    return base


def compute_timing(cell: NVMCell, design: CacheDesign) -> TimingBreakdown:
    """Full timing breakdown for a cell/design pair."""
    org = solve_organization(cell, design)
    t_htree = htree_latency(org)
    t_decode = decode_latency(cell, org)
    t_sense = sense_latency(cell)

    read_mat = t_decode + t_sense
    read_latency = 2.0 * t_htree + read_mat  # equation (4)

    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    pulses = constants.write_pulses
    write_base = t_htree + t_decode + cal.WRITE_DRIVER_S  # equation (5)
    set_latency = write_base + pulses * cell.set_pulse_s()
    reset_latency = write_base + pulses * cell.reset_pulse_s()

    # Tag array: a small same-technology array; model it as one mat of
    # tag bits with a shallow tree.
    tag_design_bits = design.tag_bits
    tag_rows = max(64, int(tag_design_bits**0.5))
    process_scale = cell.value("process_nm") / 45.0
    tag_latency = (
        cal.DECODE_S_PER_ROW * tag_rows * process_scale + t_sense * 0.8
    )

    return TimingBreakdown(
        tag_latency_s=tag_latency,
        htree_s=t_htree,
        read_mat_s=read_mat,
        read_latency_s=read_latency,
        set_latency_s=set_latency,
        reset_latency_s=reset_latency,
    )
