"""Cell pricing: turn LLC counts into a timed, energised result.

The single place where access counts meet an :class:`LLCModel`'s
latencies, energies and leakage.  Both consumers share it, so a sweep
cell is priced identically whether its counts came from a full replay
(:func:`repro.sim.system.assemble_result` delegates here) or from the
analytical surrogate (:mod:`repro.analytic` predicts counts from a
reuse profile and prices them through the same hook).

Every priced result passes the output guard
(:func:`repro.validate.guard.guard_result`) before it is returned.
"""

from __future__ import annotations

from repro.nvsim.model import LLCModel


def price_counts(
    workload: str,
    configuration: str,
    private,
    counts,
    llc_model: LLCModel,
    arch,
    write_energy_scale: float = 1.0,
):
    """Price precomputed LLC counts on one model: timing, energy, guard.

    ``private`` is the technology-independent
    :class:`~repro.sim.hierarchy.PrivateResult`; ``counts`` an
    :class:`~repro.sim.llc.LLCCounts` for this model's geometry —
    replayed or predicted, the pricing is the same.

    ``write_energy_scale`` scales per-write dynamic energy (see
    :func:`repro.sim.energy.llc_energy`); compressed-LLC callers pass
    the replayed ``write_bytes_fraction`` so the energy bill follows
    bytes actually programmed.
    """
    # Lazy imports: repro.sim modules import repro.nvsim.model at module
    # level, so importing them here (not at import time) keeps the
    # package graph acyclic.
    from repro.sim.energy import llc_energy
    from repro.sim.results import SimResult
    from repro.sim.timing import resolve_timing
    from repro.validate.guard import guard_result

    timing = resolve_timing(private, counts, llc_model, arch)
    energy = llc_energy(
        counts, llc_model, timing.runtime_s,
        include_fill_writes=arch.llc_fill_writes,
        write_energy_scale=write_energy_scale,
    )
    return guard_result(SimResult(
        workload=workload,
        llc_name=llc_model.name,
        configuration=configuration,
        runtime_s=timing.runtime_s,
        energy=energy,
        counts=counts,
        timing=timing,
        total_instructions=private.total_instructions,
    ))
