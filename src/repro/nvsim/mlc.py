"""Multi-level-cell derivation (paper Sections II-D and V-B).

Two of Table II's cells (Close, Xue) store two bits per cell, and the
paper credits MLC with the fixed-area study's largest area savings
("MLC NVMs result in significant area savings").  This module derives an
MLC variant from any SLC cell so the SLC-vs-MLC trade-off can be swept
for the whole library:

- capacity per area doubles (same F^2 footprint, two bits);
- sensing slows (two-step reference resolution — the circuit model's
  ``MLC_SENSE_PENALTY`` applies automatically once ``cell_levels`` is 2);
- programming needs tighter resistance targeting: program-and-verify
  stretches the pulse and raises energy per cell.

The derivation constants are literature-typical and live here as module
constants so they are auditable and sweepable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.cells.base import CellClass, NVMCell, Param, Provenance
from repro.cells.heuristics import apply_electrical_properties
from repro.errors import ModelGenerationError
from repro.nvsim.config import CacheDesign, FIXED_AREA_BUDGET_MM2
from repro.nvsim.model import LLCModel, generate_llc_model
from repro.nvsim.sweep import generate_fixed_area_model

#: Program-and-verify pulse stretch for 2-bit targeting.
MLC_PULSE_FACTOR = 2.5

#: Per-cell programming-energy increase for 2-bit targeting.
MLC_ENERGY_FACTOR = 1.8


def _scaled(param: Optional[Param], factor: float) -> Optional[Param]:
    if param is None:
        return None
    return Param(
        param.value * factor,
        Provenance.INTERPOLATED,
        note=f"MLC derivation: x{factor:g} from SLC",
    )


def derive_mlc_cell(cell: NVMCell) -> NVMCell:
    """Derive a 2-bit MLC variant of an SLC cell.

    SRAM cannot be MLC; already-MLC cells are returned unchanged.
    """
    if cell.cell_class is CellClass.SRAM:
        raise ModelGenerationError("SRAM has no multi-level variant")
    if cell.bits_per_cell > 1:
        return cell
    cell = apply_electrical_properties(cell)
    updates = {
        "cell_levels": Param(2, Provenance.INTERPOLATED, note="MLC derivation"),
    }
    for which in ("set", "reset"):
        pulse = cell.get(f"{which}_pulse_ns")
        energy = cell.get(f"{which}_energy_pj")
        if pulse is not None:
            updates[f"{which}_pulse_ns"] = _scaled(pulse, MLC_PULSE_FACTOR)
        if energy is not None:
            updates[f"{which}_energy_pj"] = _scaled(energy, MLC_ENERGY_FACTOR)
    derived = cell.with_params(**updates)
    return NVMCell(
        name=f"{cell.name}MLC",
        citation=f"2-bit MLC derivation of {cell.citation}",
        cell_class=cell.cell_class,
        year=cell.year,
        access_device=cell.access_device,
        **{
            key: getattr(derived, key)
            for key in (
                "process_nm",
                "cell_size_f2",
                "cell_levels",
                "read_current_ua",
                "read_voltage_v",
                "read_power_uw",
                "read_energy_pj",
                "reset_current_ua",
                "reset_voltage_v",
                "reset_pulse_ns",
                "reset_energy_pj",
                "set_current_ua",
                "set_voltage_v",
                "set_pulse_ns",
                "set_energy_pj",
            )
        },
    )


@dataclass(frozen=True)
class MLCComparison:
    """SLC vs derived-MLC LLC models for one cell."""

    slc_fixed_capacity: LLCModel
    mlc_fixed_capacity: LLCModel
    slc_fixed_area: LLCModel
    mlc_fixed_area: LLCModel

    @property
    def capacity_gain(self) -> float:
        """Fixed-area capacity multiplier MLC buys."""
        return (
            self.mlc_fixed_area.capacity_bytes
            / self.slc_fixed_area.capacity_bytes
        )

    @property
    def read_latency_penalty(self) -> float:
        """Fixed-capacity read-latency multiplier MLC costs."""
        return (
            self.mlc_fixed_capacity.read_latency_s
            / self.slc_fixed_capacity.read_latency_s
        )

    @property
    def write_latency_penalty(self) -> float:
        """Fixed-capacity write-latency multiplier MLC costs."""
        return (
            self.mlc_fixed_capacity.write_latency_s
            / self.slc_fixed_capacity.write_latency_s
        )


def compare_slc_mlc(
    cell: NVMCell,
    capacity_bytes: int = 2 * units.MB,
    area_budget_mm2: float = FIXED_AREA_BUDGET_MM2,
) -> MLCComparison:
    """Generate the SLC and MLC models at fixed capacity and fixed area."""
    mlc = derive_mlc_cell(cell)
    design = CacheDesign(capacity_bytes=capacity_bytes)
    return MLCComparison(
        slc_fixed_capacity=generate_llc_model(cell, design),
        mlc_fixed_capacity=generate_llc_model(mlc, design),
        slc_fixed_area=generate_fixed_area_model(cell, area_budget_mm2),
        mlc_fixed_area=generate_fixed_area_model(mlc, area_budget_mm2),
    )
