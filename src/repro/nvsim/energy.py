"""Energy model: equations (6)-(8) plus leakage.

- ``E_dyn_hit   = E_dyn_tag + E_dyn_data_read``   (equation 6)
- ``E_dyn_miss  = E_dyn_tag``                      (equation 7)
- ``E_dyn_write = E_dyn_tag + E_dyn_data_write``   (equation 8)

Data-array energies are built from per-cell read/programming energy
(Table II, possibly heuristic-derived) times the block's cell count,
scaled by class-level periphery overheads; leakage is per-bit periphery
leakage (plus cell leakage for SRAM) times capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.base import CellClass, NVMCell
from repro.errors import ModelGenerationError
from repro.nvsim import calibration as cal
from repro.nvsim.config import CacheDesign
from repro.nvsim.organization import htree_wire_length_m, solve_organization


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-access dynamic energies and total leakage of an LLC design.

    All energies in joules, leakage in watts.
    """

    tag_energy_j: float
    data_read_energy_j: float
    data_write_energy_j: float
    leakage_w: float

    @property
    def hit_energy_j(self) -> float:
        """Equation (6): tag lookup plus data read."""
        return self.tag_energy_j + self.data_read_energy_j

    @property
    def miss_energy_j(self) -> float:
        """Equation (7): tag lookup only."""
        return self.tag_energy_j

    @property
    def write_energy_j(self) -> float:
        """Equation (8): tag lookup plus data write."""
        return self.tag_energy_j + self.data_write_energy_j


def data_read_energy(cell: NVMCell, design: CacheDesign) -> float:
    """Dynamic energy to read one block from the data array."""
    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    bits = design.block_bytes * 8
    per_bit = constants.read_bit_energy_j
    if constants.read_voltage_energy_slope_j and cell.read_voltage_v is not None:
        per_bit += constants.read_voltage_energy_slope_j * cell.value("read_voltage_v")
    if cell.cell_class is CellClass.PCRAM:
        # PCRAM papers report per-bit read energy directly.
        per_bit += 0.6 * cell.read_energy_j()
    array_energy = bits * per_bit
    wire_energy = bits * cal.WIRE_ENERGY_J_PER_BIT_M * _wire_length(cell, design)
    return array_energy + wire_energy


def data_write_energy(cell: NVMCell, design: CacheDesign) -> float:
    """Dynamic energy to program one block into the data array."""
    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    cells = (design.block_bytes * 8) // cell.bits_per_cell
    if cells <= 0:
        raise ModelGenerationError("block smaller than one cell")
    per_cell = cell.write_energy_j() * constants.write_pulses
    array_energy = cells * per_cell * constants.write_overhead
    bits = design.block_bytes * 8
    wire_energy = bits * cal.WIRE_ENERGY_J_PER_BIT_M * _wire_length(cell, design)
    return array_energy + wire_energy


def tag_energy(cell: NVMCell, design: CacheDesign) -> float:
    """Dynamic energy of one associative tag lookup."""
    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    return constants.tag_fraction * data_read_energy(cell, design)


def leakage_power(cell: NVMCell, design: CacheDesign) -> float:
    """Total standby leakage of the LLC (data + tags) in watts.

    NVM cells themselves do not leak; the per-bit constants cover the
    CMOS periphery.  For SRAM they additionally cover the cell, which is
    why the SRAM baseline leaks roughly two orders of magnitude more
    than same-capacity NVMs (Table III).
    """
    constants = cal.CLASS_CONSTANTS[cell.cell_class]
    total_bits = design.data_bits + design.tag_bits
    return constants.leakage_per_bit_w * total_bits


def compute_energy(cell: NVMCell, design: CacheDesign) -> EnergyBreakdown:
    """Full energy breakdown for a cell/design pair."""
    return EnergyBreakdown(
        tag_energy_j=tag_energy(cell, design),
        data_read_energy_j=data_read_energy(cell, design),
        data_write_energy_j=data_write_energy(cell, design),
        leakage_w=leakage_power(cell, design),
    )


def _wire_length(cell: NVMCell, design: CacheDesign) -> float:
    return htree_wire_length_m(solve_organization(cell, design))
