"""Design-space sweeps: fixed-area capacity solving and capacity sweeps.

The paper's *fixed-area* configuration asks: given the SRAM baseline's
silicon budget (6.55 mm^2), how much capacity does each NVM buy?  This
module answers that with the analytical circuit model, mirroring the
methodology behind Table III's bottom half.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro import units
from repro.cells.base import NVMCell
from repro.errors import ModelGenerationError
from repro.obs import metrics as _metrics
from repro.nvsim.area import compute_area
from repro.nvsim.config import CacheDesign, FIXED_AREA_BUDGET_MM2
from repro.nvsim.model import LLCModel, generate_llc_model

#: Candidate LLC capacities considered by the fixed-area solver, bytes.
CAPACITY_LADDER = tuple(int(mb * units.MB) for mb in (1, 2, 4, 8, 16, 32, 64, 128, 256))


def solve_fixed_area_capacity(
    cell: NVMCell,
    area_budget_mm2: float = FIXED_AREA_BUDGET_MM2,
    design_template: Optional[CacheDesign] = None,
) -> int:
    """Largest ladder capacity whose modelled area fits the budget.

    Returns the capacity in bytes.  The smallest ladder step (1 MB) is
    returned even if it exceeds the budget slightly — matching the paper,
    where Jan_S occupies 9.17 mm^2 at 2 MB and is assigned 1 MB in the
    fixed-area study rather than being dropped.
    """
    template = design_template or CacheDesign(capacity_bytes=CAPACITY_LADDER[0])
    best = CAPACITY_LADDER[0]
    with _metrics.span("nvsim.fixed_area_solve"):
        for capacity in CAPACITY_LADDER:
            design = replace(template, capacity_bytes=capacity)
            area = compute_area(cell, design).total_mm2
            if area <= area_budget_mm2:
                best = capacity
            else:
                break
    if _metrics.enabled():
        _metrics.counter_add("nvsim.fixed_area.solves")
        _metrics.gauge_set(
            f"nvsim.fixed_area.capacity_mb.{cell.name}", best / units.MB
        )
    return best


def generate_fixed_area_model(
    cell: NVMCell,
    area_budget_mm2: float = FIXED_AREA_BUDGET_MM2,
    design_template: Optional[CacheDesign] = None,
) -> LLCModel:
    """Circuit-model LLC at the capacity the area budget buys.

    The returned model is checked against the fixed-area invariant
    (paper equation (5)): its modelled area fits the budget, except at
    the smallest ladder capacity — the paper's Jan_S case — which is
    kept despite overshooting.
    """
    from repro.validate.guard import check_sweep_models

    capacity = solve_fixed_area_capacity(cell, area_budget_mm2, design_template)
    template = design_template or CacheDesign(capacity_bytes=capacity)
    design = replace(template, capacity_bytes=capacity)
    model = generate_llc_model(cell, design)
    check_sweep_models(
        [model], "fixed-area",
        area_budget_mm2=area_budget_mm2,
        min_capacity_bytes=CAPACITY_LADDER[0],
    )
    return model


def capacity_sweep(cell: NVMCell, capacities_bytes: List[int]) -> List[LLCModel]:
    """Generate models for a cell at each requested capacity."""
    if not capacities_bytes:
        raise ModelGenerationError("capacity sweep needs at least one point")
    models = []
    with _metrics.span("nvsim.capacity_sweep"):
        for capacity in capacities_bytes:
            design = CacheDesign(capacity_bytes=capacity)
            models.append(generate_llc_model(cell, design))
    _metrics.counter_add("nvsim.models_generated", len(models))
    return models
