"""Class-level calibration constants for the simplified circuit model.

The real NVSim is a detailed transistor-level estimator; this library
replaces it with an analytical model whose *class-level* constants are
calibrated so that generated LLC models land in the same regime as the
paper's published Table III (PCRAM writes in the hundreds of nJ, STTRAM
and RRAM writes near 1 nJ, SRAM leakage ~two orders above NVM periphery
leakage, etc.).  The constants live here, in one place, so the
calibration is auditable and ablatable.

All constants are in SI units unless the name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.cells.base import CellClass


@dataclass(frozen=True)
class ClassConstants:
    """Per-technology-class calibration constants.

    Attributes
    ----------
    write_overhead:
        Multiplier on the summed per-cell programming energy of a block
        write, covering write drivers, wordline boost and charge pumps.
        Fit against Table III: ~10x for PCRAM (current-mode programming
        through long bitlines), ~3.5x STTRAM, ~2.8x RRAM.
    read_bit_energy_j:
        Baseline per-bit data-array read energy (bitline swing + sense).
    read_voltage_energy_slope_j:
        Additional per-bit read energy per volt of read voltage — the
        reason Xue (1.2 V reads) burns more per hit than Umeki (0.38 V).
    tag_fraction:
        Tag-array access energy as a fraction of a block's data-read
        energy; Table III's miss/hit ratios differ strongly by class.
    sense_time_s:
        Baseline mat sensing time.
    write_pulses:
        Number of programming pulses per write; RRAM uses 2 to model the
        write-verify-write schemes its endurance requires.
    leakage_per_bit_w:
        Periphery (plus cell, for SRAM) leakage per stored bit.
    """

    write_overhead: float
    read_bit_energy_j: float
    read_voltage_energy_slope_j: float
    tag_fraction: float
    sense_time_s: float
    write_pulses: int
    leakage_per_bit_w: float


CLASS_CONSTANTS: Dict[CellClass, ClassConstants] = {
    CellClass.PCRAM: ClassConstants(
        write_overhead=10.3,
        read_bit_energy_j=1.0e-15,
        read_voltage_energy_slope_j=0.0,
        tag_fraction=0.05,
        sense_time_s=0.55 * units.NS,
        write_pulses=1,
        leakage_per_bit_w=4.0e-9,
    ),
    CellClass.STTRAM: ClassConstants(
        write_overhead=3.5,
        read_bit_energy_j=160e-15,
        read_voltage_energy_slope_j=75e-15,
        tag_fraction=0.45,
        sense_time_s=1.5 * units.NS,
        write_pulses=1,
        leakage_per_bit_w=9.0e-9,
    ),
    CellClass.RRAM: ClassConstants(
        write_overhead=2.8,
        read_bit_energy_j=250e-15,
        read_voltage_energy_slope_j=120e-15,
        tag_fraction=0.40,
        sense_time_s=1.3 * units.NS,
        write_pulses=2,
        leakage_per_bit_w=10.0e-9,
    ),
    CellClass.SRAM: ClassConstants(
        write_overhead=1.0,
        read_bit_energy_j=1.05e-12,
        read_voltage_energy_slope_j=0.0,
        tag_fraction=0.02,
        sense_time_s=0.2 * units.NS,
        write_pulses=1,
        leakage_per_bit_w=205e-9,
    ),
}

#: Data-array cell placement efficiency (cell area / total mat area).
ARRAY_EFFICIENCY = 0.7

#: Periphery (decoders, sense amps, drivers, H-tree) area per *cell*, in
#: squared feature sizes of the cell's process.
PERIPHERY_F2_PER_CELL = 28.0

#: Signal velocity on repeated global wires: delay per metre of H-tree.
WIRE_DELAY_S_PER_M = 1.25e-7  # 125 ps/mm

#: Energy to drive one bit across one metre of H-tree wire.
WIRE_ENERGY_J_PER_BIT_M = 6.0e-11

#: Row-decode latency scale: per mat row, at a 45 nm reference process.
DECODE_S_PER_ROW = 1.3e-13

#: Write-driver setup latency added to every data-array write.
WRITE_DRIVER_S = 0.5 * units.NS

#: PCRAM sense time reference current: t_sense scales as (ref / I_read).
PCRAM_SENSE_REF_UA = 60.0

#: STTRAM/RRAM sense time reference voltage: lower read voltage means a
#: smaller signal and a slower sense amplifier resolution.
SENSE_REF_V = 0.4

#: Exponent of the sense-time vs read-voltage relationship.  Sub-linear:
#: sense amplifiers recover part of a weak signal with staging.
SENSE_VOLTAGE_EXPONENT = 0.35

#: Sense-time multiplier for multi-level cells (two-step sensing).
MLC_SENSE_PENALTY = 1.8
