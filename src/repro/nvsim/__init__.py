"""NVSim-equivalent circuit model and the published Table III models.

Two ways to obtain an :class:`~repro.nvsim.model.LLCModel`:

- :func:`~repro.nvsim.model.generate_llc_model` runs the simplified
  analytical circuit model on a cell (the *methodology* reproduction);
- :func:`~repro.nvsim.published.published_model` returns the paper's
  Table III values verbatim (the *experiment input* reproduction).
"""

from repro.nvsim.area import AreaBreakdown, compute_area
from repro.nvsim.config import (
    FIXED_AREA_BUDGET_MM2,
    GAINESTOWN_LLC_DESIGN,
    CacheDesign,
)
from repro.nvsim.energy import EnergyBreakdown, compute_energy
from repro.nvsim.fidelity import (
    FidelityReport,
    ordering_agreements,
    validate_fidelity,
)
from repro.nvsim.mlc import (
    MLCComparison,
    compare_slc_mlc,
    derive_mlc_cell,
)
from repro.nvsim.model import LLCModel, generate_llc_model
from repro.nvsim.organization import Organization, solve_organization
from repro.nvsim.pricing import price_counts
from repro.nvsim.published import (
    CONFIGURATIONS,
    FIXED_AREA,
    FIXED_CAPACITY,
    nvm_models,
    published_model,
    published_models,
    sram_baseline,
)
from repro.nvsim.sweep import (
    CAPACITY_LADDER,
    capacity_sweep,
    generate_fixed_area_model,
    solve_fixed_area_capacity,
)
from repro.nvsim.timing import TimingBreakdown, compute_timing

__all__ = [
    "AreaBreakdown",
    "compute_area",
    "FIXED_AREA_BUDGET_MM2",
    "GAINESTOWN_LLC_DESIGN",
    "CacheDesign",
    "EnergyBreakdown",
    "compute_energy",
    "FidelityReport",
    "ordering_agreements",
    "validate_fidelity",
    "MLCComparison",
    "compare_slc_mlc",
    "derive_mlc_cell",
    "LLCModel",
    "generate_llc_model",
    "Organization",
    "solve_organization",
    "price_counts",
    "CONFIGURATIONS",
    "FIXED_AREA",
    "FIXED_CAPACITY",
    "nvm_models",
    "published_model",
    "published_models",
    "sram_baseline",
    "CAPACITY_LADDER",
    "capacity_sweep",
    "generate_fixed_area_model",
    "solve_fixed_area_capacity",
    "TimingBreakdown",
    "compute_timing",
]
