"""repro.serve — the experiment service daemon and its client.

A long-running HTTP JSON service over the experiment engine: a
priority job queue that deduplicates concurrent identical submissions
onto one computation (:mod:`repro.serve.queue`), a bounded worker pool
with the sweep layer's fault/retry discipline
(:mod:`repro.serve.executor`), graceful SIGTERM drain with a durable
queued-job journal (:mod:`repro.serve.journal`), and stdlib HTTP
endpoints plus a urllib client (:mod:`repro.serve.server`,
:mod:`repro.serve.client`).  See ``docs/SERVING.md``.

Fleet mode shards the service across N instances: jobs route by spec
digest over a consistent-hash ring (:mod:`repro.serve.ring`) — via the
multiplexed :class:`~repro.serve.router.ShardRouter` front end or
client-side :class:`~repro.serve.client.ShardedClient` — and shards
share finished payloads through a content-addressed result store
(:mod:`repro.serve.store`), so dedup and byte-identity hold fleet-wide.
:mod:`repro.serve.fleet` launches the whole topology.
"""

from repro.serve.chaos import CHAOS_LOG_ENV, log_computation
from repro.serve.client import (
    DEFAULT_URL,
    SHARDS_ENV,
    URL_ENV,
    ServeClient,
    ShardedClient,
    resolve_shards,
    resolve_url,
    submit_with_backoff,
)
from repro.serve.executor import (
    DEFAULT_WORKERS,
    JOB_HOOK_ENV,
    WORKERS_ENV,
    WorkerPool,
)
from repro.serve.fleet import (
    FLEET_SHARDS_ENV,
    Fleet,
    FleetSupervisor,
    InProcessFleet,
    ShardProcess,
    resolve_fleet_shards,
)
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    execute_spec,
    normalize_spec,
    spec_digest,
)
from repro.serve.journal import JOB_JOURNAL_NAME, JobJournal
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_RETRY_AFTER_S,
    JobQueue,
)
from repro.serve.ring import (
    DEFAULT_RING_REPLICAS,
    RING_REPLICAS_ENV,
    HashRing,
    VersionedRing,
    moved_keys,
    resolve_ring_replicas,
)
from repro.serve.router import (
    DEFAULT_EJECT_AFTER,
    DEFAULT_HEARTBEAT_S,
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    EJECT_AFTER_ENV,
    HEARTBEAT_S_ENV,
    HEARTBEAT_TIMEOUT_ENV,
    ShardRouter,
    resolve_heartbeat,
)
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DIR_ENV,
    HOST_ENV,
    PORT_ENV,
    QUEUE_MAX_ENV,
    ExperimentServer,
)
from repro.serve.store import (
    STORE_DIR_ENV,
    STORE_MAX_MB_ENV,
    STORE_URL_ENV,
    FileResultStore,
    HTTPResultStore,
    ResultStore,
    resolve_store,
    store_max_bytes,
)

__all__ = [
    "CHAOS_LOG_ENV",
    "DEFAULT_EJECT_AFTER",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_HEARTBEAT_TIMEOUT_S",
    "DEFAULT_HOST",
    "DEFAULT_MAX_QUEUED",
    "DEFAULT_PORT",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_RING_REPLICAS",
    "DEFAULT_URL",
    "DEFAULT_WORKERS",
    "DIR_ENV",
    "EJECT_AFTER_ENV",
    "ExperimentServer",
    "FLEET_SHARDS_ENV",
    "FileResultStore",
    "Fleet",
    "FleetSupervisor",
    "HEARTBEAT_S_ENV",
    "HEARTBEAT_TIMEOUT_ENV",
    "HOST_ENV",
    "HTTPResultStore",
    "HashRing",
    "InProcessFleet",
    "JOB_HOOK_ENV",
    "JOB_JOURNAL_NAME",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JobState",
    "PORT_ENV",
    "QUEUE_MAX_ENV",
    "RING_REPLICAS_ENV",
    "ResultStore",
    "SHARDS_ENV",
    "STORE_DIR_ENV",
    "STORE_MAX_MB_ENV",
    "STORE_URL_ENV",
    "ServeClient",
    "ShardProcess",
    "ShardRouter",
    "ShardedClient",
    "URL_ENV",
    "VersionedRing",
    "WORKERS_ENV",
    "WorkerPool",
    "execute_spec",
    "log_computation",
    "moved_keys",
    "normalize_spec",
    "resolve_fleet_shards",
    "resolve_heartbeat",
    "resolve_ring_replicas",
    "resolve_shards",
    "resolve_store",
    "resolve_url",
    "spec_digest",
    "store_max_bytes",
    "submit_with_backoff",
]
