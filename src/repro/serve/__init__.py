"""repro.serve — the experiment service daemon and its client.

A long-running HTTP JSON service over the experiment engine: a
priority job queue that deduplicates concurrent identical submissions
onto one computation (:mod:`repro.serve.queue`), a bounded worker pool
with the sweep layer's fault/retry discipline
(:mod:`repro.serve.executor`), graceful SIGTERM drain with a durable
queued-job journal (:mod:`repro.serve.journal`), and stdlib HTTP
endpoints plus a urllib client (:mod:`repro.serve.server`,
:mod:`repro.serve.client`).  See ``docs/SERVING.md``.
"""

from repro.serve.client import DEFAULT_URL, URL_ENV, ServeClient, resolve_url
from repro.serve.executor import DEFAULT_WORKERS, WORKERS_ENV, WorkerPool
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    execute_spec,
    normalize_spec,
    spec_digest,
)
from repro.serve.journal import JOB_JOURNAL_NAME, JobJournal
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_RETRY_AFTER_S,
    JobQueue,
)
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DIR_ENV,
    HOST_ENV,
    PORT_ENV,
    QUEUE_MAX_ENV,
    ExperimentServer,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_MAX_QUEUED",
    "DEFAULT_PORT",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_URL",
    "DEFAULT_WORKERS",
    "DIR_ENV",
    "ExperimentServer",
    "HOST_ENV",
    "JOB_JOURNAL_NAME",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobSpec",
    "JobState",
    "PORT_ENV",
    "QUEUE_MAX_ENV",
    "ServeClient",
    "URL_ENV",
    "WORKERS_ENV",
    "WorkerPool",
    "execute_spec",
    "normalize_spec",
    "resolve_url",
    "spec_digest",
]
