"""Consistent-hash ring routing spec digests across serve shards.

The fleet routes every job by its :func:`~repro.serve.jobs.spec_digest`
— the same identity the queue dedups on and the result store is keyed
by — so one digest always lands on one shard, and in-shard dedup
composes into fleet-wide dedup without any coordination.

The ring is the classic construction: each shard contributes
``replicas`` *virtual nodes* (points on a 64-bit circle, placed by
hashing ``"<shard>#<i>"``), and a key belongs to the first point at or
after its own hash, wrapping at the top.  Two properties make it the
right router (both pinned by property tests in
``tests/serve/test_ring.py``):

- **near-uniform spread** — with enough virtual nodes the arcs owned by
  each shard even out, so shards see balanced load without tracking it;
- **minimal remapping** — adding a shard only claims arcs from existing
  owners: every key either keeps its shard or moves to the new one
  (expected fraction moved ``1/(N+1)``), and removing a shard only
  moves that shard's keys.  A fleet can grow or lose a shard without a
  global reshuffle of the content-addressed result space.

The ring is immutable; grow or shrink by building a derived ring with
:meth:`HashRing.with_node` / :meth:`HashRing.without_node` — cheap, and
it keeps concurrent lookups trivially safe.  :class:`VersionedRing`
layers a monotonically increasing *version* over that derivation: each
join/leave produces a new (ring, version+1) pair, so the router can
tell clients — and its own bookkeeping — exactly which membership
epoch a routing decision belongs to.

Everything here is stdlib (:mod:`hashlib` + :mod:`bisect`): the router
process and client-side routing both stay dependency-free.
"""

from __future__ import annotations

import bisect
import hashlib
import os
from typing import Dict, List, Sequence, Tuple

from repro.errors import ServeError

#: Environment variable overriding virtual nodes per shard.
RING_REPLICAS_ENV = "REPRO_SERVE_RING_REPLICAS"

#: Default virtual nodes per shard.  64 keeps the max/min shard share
#: within ~2x of fair for small fleets; raise it for tighter balance.
DEFAULT_RING_REPLICAS = 64


def resolve_ring_replicas(replicas=None) -> int:
    """Virtual-node count: explicit argument > environment > default."""
    if replicas is None:
        raw = os.environ.get(RING_REPLICAS_ENV, "").strip()
        if raw:
            try:
                replicas = int(raw)
            except ValueError:
                raise ServeError(
                    f"{RING_REPLICAS_ENV} must be an integer, got {raw!r}"
                )
        else:
            replicas = DEFAULT_RING_REPLICAS
    if replicas < 1:
        raise ServeError("ring replicas must be >= 1")
    return int(replicas)


def _point(label: str) -> int:
    """Position of a label on the 64-bit circle."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Immutable consistent-hash ring over shard identifiers.

    ``nodes`` are opaque strings (the fleet uses shard base URLs).
    Duplicate nodes are rejected: a ring where one shard owns two
    identities would silently double its share.
    """

    def __init__(self, nodes: Sequence[str], replicas=None) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ServeError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ServeError("hash ring nodes must be unique")
        self.replicas = resolve_ring_replicas(replicas)
        self.nodes: Tuple[str, ...] = tuple(nodes)
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(self.replicas):
                points.append((_point(f"{node}#{index}"), node))
        # On a (astronomically unlikely) point collision the
        # lexically-smaller node wins deterministically on every host.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def node_for(self, key: str) -> str:
        """The shard owning ``key`` (first point at or after its hash)."""
        position = bisect.bisect_right(self._points, _point(key))
        if position == len(self._points):
            position = 0  # wrap past the top of the circle
        return self._owners[position]

    def with_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` joined."""
        return HashRing(self.nodes + (node,), replicas=self.replicas)

    def without_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed."""
        if node not in self.nodes:
            raise ServeError(f"node {node!r} is not on the ring")
        return HashRing(
            [n for n in self.nodes if n != node], replicas=self.replicas
        )

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (diagnostics, tests)."""
        out = {node: 0 for node in self.nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (rendered by the router's health record)."""
        return {
            "nodes": list(self.nodes),
            "replicas": self.replicas,
            "points": len(self._points),
        }

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: object) -> bool:
        return node in self.nodes

    def __eq__(self, other: object) -> bool:
        """Structural identity: same points owned by the same nodes.

        Add-then-remove round-trips to an *identical* ring under this
        equality (pinned by ``tests/serve/test_ring.py``), which is
        what makes transient membership churn fully reversible.
        """
        if not isinstance(other, HashRing):
            return NotImplemented
        return (
            self.nodes == other.nodes
            and self.replicas == other.replicas
            and self._points == other._points
            and self._owners == other._owners
        )

    def __hash__(self) -> int:
        return hash((self.nodes, self.replicas))


def moved_keys(old: HashRing, new: HashRing, keys: Sequence[str]) -> List[str]:
    """Keys whose owner differs between two rings (remap diagnostics).

    The router counts these on every membership change; the minimal-
    remap property tests assert every moved key involves the joined or
    departed node.
    """
    return [key for key in keys if old.node_for(key) != new.node_for(key)]


class VersionedRing:
    """A :class:`HashRing` plus a monotonically increasing version.

    Immutable like the ring itself: :meth:`join` / :meth:`leave` return
    a *new* ``VersionedRing`` with the version bumped, so a reader that
    grabbed a reference keeps a consistent (membership, version) pair
    while the router swaps in the successor.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        replicas=None,
        version: int = 0,
        _ring: "HashRing" = None,
    ) -> None:
        self.ring = _ring if _ring is not None else HashRing(
            nodes, replicas=replicas
        )
        self.version = int(version)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return self.ring.nodes

    @property
    def replicas(self) -> int:
        return self.ring.replicas

    def node_for(self, key: str) -> str:
        return self.ring.node_for(key)

    def join(self, node: str) -> "VersionedRing":
        """A new versioned ring with ``node`` joined (version + 1)."""
        return VersionedRing(
            (), version=self.version + 1, _ring=self.ring.with_node(node)
        )

    def leave(self, node: str) -> "VersionedRing":
        """A new versioned ring with ``node`` removed (version + 1)."""
        if len(self.ring) == 1:
            raise ServeError(
                f"cannot remove {node!r}: it is the last node on the ring"
            )
        return VersionedRing(
            (), version=self.version + 1, _ring=self.ring.without_node(node)
        )

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (the router's ``GET /ring`` payload core)."""
        out = self.ring.describe()
        out["version"] = self.version
        return out

    def __len__(self) -> int:
        return len(self.ring)

    def __contains__(self, node: object) -> bool:
        return node in self.ring
