"""Fleet launcher: N serve shards + a shared store + one router.

Two launchers with the same shape:

- :class:`Fleet` — each shard is a real ``repro-cli serve`` *process*
  (spawned with ``--port 0``, base URL parsed from the startup banner),
  all pointed at one shared :class:`~repro.serve.store.FileResultStore`
  directory, fronted by an in-process
  :class:`~repro.serve.router.ShardRouter`.  This is what
  ``repro-cli fleet``, the identity tests and the CI load-smoke job
  run: true process isolation, real SIGTERM drains, per-shard metrics.
- :class:`InProcessFleet` — each shard is an
  :class:`~repro.serve.server.ExperimentServer` *in this process*.
  Cheap enough for unit tests.  Caveat: the obs registry is
  process-global, so module-level counters from all shards land in the
  most recently started shard's registry — assert fleet-wide counters
  through the router's ``/metrics`` (which aggregates per shard) or
  use the subprocess :class:`Fleet`.

Shards restart in place: :meth:`Fleet.restart_shard` SIGTERMs one
shard (it drains — in-flight jobs finish, queued jobs journal) and
relaunches it on the *same* port and state directory, so the ring
placement is unchanged and the journal restores.  This is the seam the
mid-run fault tests pull.

Self-healing: with ``supervise=True`` a :class:`FleetSupervisor`
thread polls the shard processes, notices crashes (SIGKILL included —
:meth:`ShardProcess.kill` leaves the corpse visible), and restarts
each dead shard on its original port under the sweep layer's
:class:`~repro.sim.parallel.FaultPolicy` exponential backoff.  Because
the URL is unchanged, the router's heartbeat monitor rejoins the shard
to the ring on its first healthy probe; the supervisor also nudges the
ring directly so recovery does not wait a full heartbeat period.
Membership is elastic at runtime via :meth:`Fleet.add_shard` /
:meth:`Fleet.remove_shard` (mirrored on :class:`InProcessFleet`).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ServeError
from repro.obs import metrics as _metrics
from repro.serve.router import ShardRouter
from repro.serve.server import ExperimentServer
from repro.serve.store import STORE_DIR_ENV, FileResultStore
from repro.sim.parallel import FaultPolicy

#: Environment variable for the default fleet shard count.
FLEET_SHARDS_ENV = "REPRO_SERVE_FLEET_SHARDS"

#: Seconds to wait for a shard banner / drain before giving up.
_STARTUP_TIMEOUT_S = 30.0
_DRAIN_TIMEOUT_S = 60.0


def _repo_pythonpath() -> str:
    """A PYTHONPATH that resolves :mod:`repro` for child processes."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


class ShardProcess:
    """One ``repro-cli serve`` child process."""

    def __init__(
        self,
        index: int,
        state_dir: Path,
        store_dir: Path,
        workers: int = 2,
        port: int = 0,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.index = index
        self.state_dir = Path(state_dir)
        self.store_dir = Path(store_dir)
        self.workers = workers
        self.port = port
        self.extra_env = dict(extra_env or {})
        self.process: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None

    def start(self) -> "ShardProcess":
        """Spawn the daemon and parse its base URL from the banner.

        Restarting over a dead process (a crash corpse left by
        :meth:`kill`) is allowed; restarting a live shard is an error.
        """
        if self.process is not None:
            if self.process.poll() is None:
                raise ServeError(f"shard {self.index} already running")
            if self.process.stdout is not None:
                self.process.stdout.close()
            self.process = None
        self.state_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        env.update(self.extra_env)
        env["PYTHONPATH"] = _repo_pythonpath()
        env[STORE_DIR_ENV] = str(self.store_dir)
        env.pop("REPRO_SERVE_PORT", None)
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(self.port),
                "--workers", str(self.workers),
                "--dir", str(self.state_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.url = self._await_banner()
        # Remember the bound port so a restart lands on the same URL
        # (ring placement must survive the bounce).
        self.port = int(self.url.rsplit(":", 1)[1])
        return self

    def _await_banner(self) -> str:
        assert self.process is not None and self.process.stdout is not None
        banner: List[str] = []
        deadline = time.monotonic() + _STARTUP_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ServeError(
                    f"shard {self.index} exited during startup "
                    f"(rc={self.process.returncode}): "
                    + "".join(banner)[-500:]
                )
            line = self.process.stdout.readline()
            if not line:
                continue
            banner.append(line)
            if line.startswith("repro-serve listening on "):
                return line.split("repro-serve listening on ", 1)[1].strip()
        raise ServeError(
            f"shard {self.index} printed no banner within "
            f"{_STARTUP_TIMEOUT_S:g}s: " + "".join(banner)[-500:]
        )

    def terminate(self, timeout_s: float = _DRAIN_TIMEOUT_S) -> int:
        """SIGTERM the shard and wait for its graceful drain."""
        if self.process is None:
            return 0
        process, self.process = self.process, None
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)
        if process.stdout is not None:
            process.stdout.close()
        return process.returncode or 0

    def kill(self) -> None:
        """SIGKILL the shard — no drain, no journal flush beyond what
        the queue already wrote.

        Unlike :meth:`terminate` this *keeps* ``self.process`` (the
        corpse), so :attr:`alive` turns false while the supervisor can
        still see the crash and restart in place.
        """
        if self.process is None or self.process.poll() is not None:
            return
        self.process.kill()
        self.process.wait(timeout=10.0)
        if self.process.stdout is not None:
            self.process.stdout.close()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def crashed(self) -> bool:
        """The process exited without :meth:`terminate` reaping it."""
        return self.process is not None and self.process.poll() is not None


class Fleet:
    """N shard processes + shared file store + in-process router."""

    def __init__(
        self,
        shards: int = 2,
        root: Optional[str] = None,
        workers: int = 2,
        router_host: str = "127.0.0.1",
        router_port: int = 0,
        extra_env: Optional[Dict[str, str]] = None,
        supervise: bool = False,
        policy: Optional[FaultPolicy] = None,
        heartbeat_s: Optional[float] = None,
        heartbeat_timeout_s: Optional[float] = None,
        eject_after: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ServeError("fleet needs at least one shard")
        if root is None:
            import tempfile

            root = tempfile.mkdtemp(prefix="repro-fleet-")
        self.root = Path(root)
        self.store_dir = self.root / "store"
        self.shard_count = shards
        self.workers = workers
        self.extra_env = dict(extra_env or {})
        self.router_host = router_host
        self.router_port = router_port
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.eject_after = eject_after
        self.shards: List[ShardProcess] = []
        self.router: Optional[ShardRouter] = None
        self.supervisor: Optional[FleetSupervisor] = None
        self._supervise = supervise
        self._policy = policy

    def start(self) -> "Fleet":
        """Launch every shard, then the router over their URLs."""
        try:
            for index in range(self.shard_count):
                shard = ShardProcess(
                    index,
                    state_dir=self.root / f"shard{index}",
                    store_dir=self.store_dir,
                    workers=self.workers,
                    extra_env=self.extra_env,
                )
                self.shards.append(shard.start())
            self.router = ShardRouter(
                [s.url for s in self.shards if s.url],
                host=self.router_host,
                port=self.router_port,
                heartbeat_s=self.heartbeat_s,
                heartbeat_timeout_s=self.heartbeat_timeout_s,
                eject_after=self.eject_after,
            ).start()
            if self._supervise:
                self.supervisor = FleetSupervisor(
                    self, policy=self._policy
                ).start()
        except BaseException:
            self.stop()
            raise
        return self

    @property
    def url(self) -> str:
        """The router base URL clients should use."""
        if self.router is None:
            raise ServeError("fleet is not running")
        return self.router.url

    @property
    def shard_urls(self) -> List[str]:
        return [s.url for s in self.shards if s.url is not None]

    def restart_shard(self, index: int) -> ShardProcess:
        """Drain one shard (SIGTERM) and relaunch it on the same port.

        The journal in the shard's state directory restores its queued
        jobs; the URL is unchanged so ring placement is stable and the
        router keeps routing to it without a rebuild.
        """
        shard = self.shards[index]
        shard.terminate()
        return shard.start()

    def kill_shard(self, index: int, force: bool = False) -> None:
        """Take one shard down (degraded-fleet and chaos tests).

        Default is a graceful SIGTERM drain that also forgets the
        process, so the supervisor treats it as deliberate; ``force``
        SIGKILLs instead, leaving the crash visible for the supervisor
        to heal.
        """
        if force:
            self.shards[index].kill()
        else:
            self.shards[index].terminate()

    def add_shard(self) -> ShardProcess:
        """Grow the fleet by one shard and join it to the live ring."""
        index = len(self.shards)
        shard = ShardProcess(
            index,
            state_dir=self.root / f"shard{index}",
            store_dir=self.store_dir,
            workers=self.workers,
            extra_env=self.extra_env,
        )
        shard.start()
        self.shards.append(shard)
        if self.router is not None and shard.url:
            self.router.add_shard(shard.url)
        return shard

    def remove_shard(self, index: int) -> None:
        """Shrink the fleet: leave the ring first, then drain the shard.

        Ordering matters — once the shard is out of the ring no new
        digest routes to it, so the SIGTERM drain finishes its
        in-flight work without racing new arrivals.
        """
        shard = self.shards[index]
        if self.router is not None and shard.url:
            try:
                self.router.remove_shard(shard.url, forget=True)
            except ServeError:
                pass  # e.g. last ring node; still drain the process
        shard.terminate()

    def stop(self) -> Dict[str, Any]:
        """Stop the supervisor and router, then drain shards in
        reverse start order."""
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self.router is not None:
            self.router.stop()
            self.router = None
        codes = [shard.terminate() for shard in reversed(self.shards)]
        self.shards = []
        return {"shard_exit_codes": list(reversed(codes))}

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class FleetSupervisor:
    """Daemon thread healing crashed shard processes.

    Polls every :class:`ShardProcess`; a corpse (``poll() is not
    None``) is restarted on its original port under the
    :class:`~repro.sim.parallel.FaultPolicy` retry discipline — the
    same ``backoff_s * 2**(attempt-1)`` schedule the sweep layer uses,
    up to ``max_retries + 1`` consecutive attempts per shard before
    giving up on it.  A deliberate :meth:`ShardProcess.terminate`
    clears the process handle, so drained shards are never resurrected.

    Successful restarts count ``serve.fleet.restarts`` and nudge the
    router to rejoin the shard immediately instead of waiting for the
    next heartbeat.
    """

    def __init__(
        self,
        fleet: "Fleet",
        policy: Optional[FaultPolicy] = None,
        poll_s: float = 0.25,
    ) -> None:
        self.fleet = fleet
        self.policy = policy if policy is not None else FaultPolicy.from_env()
        self.poll_s = poll_s
        self.restarts = 0
        self._attempts: Dict[int, int] = {}
        self._given_up: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "FleetSupervisor":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="fleet-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            for shard in list(self.fleet.shards):
                if shard.index in self._given_up or not shard.crashed:
                    continue
                self._revive(shard)

    def _revive(self, shard: ShardProcess) -> None:
        attempt = self._attempts.get(shard.index, 0) + 1
        if attempt > self.policy.max_retries + 1:
            self._given_up.add(shard.index)
            _metrics.counter_add("serve.fleet.abandoned")
            return
        self._attempts[shard.index] = attempt
        backoff = self.policy.backoff_s * (2 ** (attempt - 1))
        if self._stop.wait(backoff):
            return
        try:
            shard.start()
        except ServeError:
            return  # corpse persists; next poll retries, backed off
        self._attempts.pop(shard.index, None)
        self.restarts += 1
        _metrics.counter_add("serve.fleet.restarts")
        router = self.fleet.router
        if router is not None and shard.url:
            try:
                router.add_shard(shard.url)
            except ServeError:
                pass  # heartbeat rejoin remains the fallback path


class InProcessFleet:
    """N :class:`ExperimentServer` shards in this process + a router.

    For unit tests that need a fleet topology without process spawns.
    All shards share one :class:`FileResultStore`.  See the module
    docstring for the obs-registry caveat.
    """

    def __init__(
        self,
        shards: int = 2,
        root: Optional[str] = None,
        workers: int = 1,
        heartbeat_s: Optional[float] = None,
        heartbeat_timeout_s: Optional[float] = None,
        eject_after: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ServeError("fleet needs at least one shard")
        if root is None:
            import tempfile

            root = tempfile.mkdtemp(prefix="repro-fleet-")
        self.root = Path(root)
        self.store = FileResultStore(self.root / "store")
        self.shard_count = shards
        self.workers = workers
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.eject_after = eject_after
        self.servers: List[ExperimentServer] = []
        self.router: Optional[ShardRouter] = None
        self._lock = threading.Lock()

    def start(self) -> "InProcessFleet":
        try:
            for index in range(self.shard_count):
                server = ExperimentServer(
                    port=0,
                    workers=self.workers,
                    state_dir=str(self.root / f"shard{index}"),
                    store=self.store,
                )
                server.start()
                self.servers.append(server)
            self.router = ShardRouter(
                [server.url for server in self.servers],
                heartbeat_s=self.heartbeat_s,
                heartbeat_timeout_s=self.heartbeat_timeout_s,
                eject_after=self.eject_after,
            ).start()
        except BaseException:
            self.stop()
            raise
        return self

    def add_shard(self) -> ExperimentServer:
        """Grow the fleet by one in-process shard, joined to the ring."""
        index = len(self.servers)
        server = ExperimentServer(
            port=0,
            workers=self.workers,
            state_dir=str(self.root / f"shard{index}"),
            store=self.store,
        )
        server.start()
        self.servers.append(server)
        if self.router is not None:
            self.router.add_shard(server.url)
        return server

    @property
    def url(self) -> str:
        if self.router is None:
            raise ServeError("fleet is not running")
        return self.router.url

    @property
    def shard_urls(self) -> List[str]:
        return [server.url for server in self.servers]

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        # Reverse order unwinds the nested registry installs correctly.
        for server in reversed(self.servers):
            server.drain()
        self.servers = []

    def __enter__(self) -> "InProcessFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def resolve_fleet_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument > environment > default (2)."""
    if shards is None:
        raw = os.environ.get(FLEET_SHARDS_ENV, "").strip()
        if raw:
            try:
                shards = int(raw)
            except ValueError:
                raise ServeError(
                    f"{FLEET_SHARDS_ENV} must be an integer, got {raw!r}"
                )
        else:
            shards = 2
    if shards < 1:
        raise ServeError("fleet needs at least one shard")
    return int(shards)
