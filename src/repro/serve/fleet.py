"""Fleet launcher: N serve shards + a shared store + one router.

Two launchers with the same shape:

- :class:`Fleet` — each shard is a real ``repro-cli serve`` *process*
  (spawned with ``--port 0``, base URL parsed from the startup banner),
  all pointed at one shared :class:`~repro.serve.store.FileResultStore`
  directory, fronted by an in-process
  :class:`~repro.serve.router.ShardRouter`.  This is what
  ``repro-cli fleet``, the identity tests and the CI load-smoke job
  run: true process isolation, real SIGTERM drains, per-shard metrics.
- :class:`InProcessFleet` — each shard is an
  :class:`~repro.serve.server.ExperimentServer` *in this process*.
  Cheap enough for unit tests.  Caveat: the obs registry is
  process-global, so module-level counters from all shards land in the
  most recently started shard's registry — assert fleet-wide counters
  through the router's ``/metrics`` (which aggregates per shard) or
  use the subprocess :class:`Fleet`.

Shards restart in place: :meth:`Fleet.restart_shard` SIGTERMs one
shard (it drains — in-flight jobs finish, queued jobs journal) and
relaunches it on the *same* port and state directory, so the ring
placement is unchanged and the journal restores.  This is the seam the
mid-run fault tests pull.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ServeError
from repro.serve.router import ShardRouter
from repro.serve.server import ExperimentServer
from repro.serve.store import STORE_DIR_ENV, FileResultStore

#: Environment variable for the default fleet shard count.
FLEET_SHARDS_ENV = "REPRO_SERVE_FLEET_SHARDS"

#: Seconds to wait for a shard banner / drain before giving up.
_STARTUP_TIMEOUT_S = 30.0
_DRAIN_TIMEOUT_S = 60.0


def _repo_pythonpath() -> str:
    """A PYTHONPATH that resolves :mod:`repro` for child processes."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


class ShardProcess:
    """One ``repro-cli serve`` child process."""

    def __init__(
        self,
        index: int,
        state_dir: Path,
        store_dir: Path,
        workers: int = 2,
        port: int = 0,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.index = index
        self.state_dir = Path(state_dir)
        self.store_dir = Path(store_dir)
        self.workers = workers
        self.port = port
        self.extra_env = dict(extra_env or {})
        self.process: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None

    def start(self) -> "ShardProcess":
        """Spawn the daemon and parse its base URL from the banner."""
        if self.process is not None:
            raise ServeError(f"shard {self.index} already running")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        env.update(self.extra_env)
        env["PYTHONPATH"] = _repo_pythonpath()
        env[STORE_DIR_ENV] = str(self.store_dir)
        env.pop("REPRO_SERVE_PORT", None)
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(self.port),
                "--workers", str(self.workers),
                "--dir", str(self.state_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.url = self._await_banner()
        # Remember the bound port so a restart lands on the same URL
        # (ring placement must survive the bounce).
        self.port = int(self.url.rsplit(":", 1)[1])
        return self

    def _await_banner(self) -> str:
        assert self.process is not None and self.process.stdout is not None
        banner: List[str] = []
        deadline = time.monotonic() + _STARTUP_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ServeError(
                    f"shard {self.index} exited during startup "
                    f"(rc={self.process.returncode}): "
                    + "".join(banner)[-500:]
                )
            line = self.process.stdout.readline()
            if not line:
                continue
            banner.append(line)
            if line.startswith("repro-serve listening on "):
                return line.split("repro-serve listening on ", 1)[1].strip()
        raise ServeError(
            f"shard {self.index} printed no banner within "
            f"{_STARTUP_TIMEOUT_S:g}s: " + "".join(banner)[-500:]
        )

    def terminate(self, timeout_s: float = _DRAIN_TIMEOUT_S) -> int:
        """SIGTERM the shard and wait for its graceful drain."""
        if self.process is None:
            return 0
        process, self.process = self.process, None
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10.0)
        if process.stdout is not None:
            process.stdout.close()
        return process.returncode or 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class Fleet:
    """N shard processes + shared file store + in-process router."""

    def __init__(
        self,
        shards: int = 2,
        root: Optional[str] = None,
        workers: int = 2,
        router_host: str = "127.0.0.1",
        router_port: int = 0,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if shards < 1:
            raise ServeError("fleet needs at least one shard")
        if root is None:
            import tempfile

            root = tempfile.mkdtemp(prefix="repro-fleet-")
        self.root = Path(root)
        self.store_dir = self.root / "store"
        self.shard_count = shards
        self.workers = workers
        self.extra_env = dict(extra_env or {})
        self.router_host = router_host
        self.router_port = router_port
        self.shards: List[ShardProcess] = []
        self.router: Optional[ShardRouter] = None

    def start(self) -> "Fleet":
        """Launch every shard, then the router over their URLs."""
        try:
            for index in range(self.shard_count):
                shard = ShardProcess(
                    index,
                    state_dir=self.root / f"shard{index}",
                    store_dir=self.store_dir,
                    workers=self.workers,
                    extra_env=self.extra_env,
                )
                self.shards.append(shard.start())
            self.router = ShardRouter(
                [s.url for s in self.shards if s.url],
                host=self.router_host,
                port=self.router_port,
            ).start()
        except BaseException:
            self.stop()
            raise
        return self

    @property
    def url(self) -> str:
        """The router base URL clients should use."""
        if self.router is None:
            raise ServeError("fleet is not running")
        return self.router.url

    @property
    def shard_urls(self) -> List[str]:
        return [s.url for s in self.shards if s.url is not None]

    def restart_shard(self, index: int) -> ShardProcess:
        """Drain one shard (SIGTERM) and relaunch it on the same port.

        The journal in the shard's state directory restores its queued
        jobs; the URL is unchanged so ring placement is stable and the
        router keeps routing to it without a rebuild.
        """
        shard = self.shards[index]
        shard.terminate()
        return shard.start()

    def kill_shard(self, index: int) -> None:
        """SIGTERM one shard and leave it down (degraded-fleet tests)."""
        self.shards[index].terminate()

    def stop(self) -> Dict[str, Any]:
        """Stop the router, then drain shards in reverse start order."""
        if self.router is not None:
            self.router.stop()
            self.router = None
        codes = [shard.terminate() for shard in reversed(self.shards)]
        self.shards = []
        return {"shard_exit_codes": list(reversed(codes))}

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class InProcessFleet:
    """N :class:`ExperimentServer` shards in this process + a router.

    For unit tests that need a fleet topology without process spawns.
    All shards share one :class:`FileResultStore`.  See the module
    docstring for the obs-registry caveat.
    """

    def __init__(
        self,
        shards: int = 2,
        root: Optional[str] = None,
        workers: int = 1,
    ) -> None:
        if shards < 1:
            raise ServeError("fleet needs at least one shard")
        if root is None:
            import tempfile

            root = tempfile.mkdtemp(prefix="repro-fleet-")
        self.root = Path(root)
        self.store = FileResultStore(self.root / "store")
        self.shard_count = shards
        self.workers = workers
        self.servers: List[ExperimentServer] = []
        self.router: Optional[ShardRouter] = None
        self._lock = threading.Lock()

    def start(self) -> "InProcessFleet":
        try:
            for index in range(self.shard_count):
                server = ExperimentServer(
                    port=0,
                    workers=self.workers,
                    state_dir=str(self.root / f"shard{index}"),
                    store=self.store,
                )
                server.start()
                self.servers.append(server)
            self.router = ShardRouter(
                [server.url for server in self.servers]
            ).start()
        except BaseException:
            self.stop()
            raise
        return self

    @property
    def url(self) -> str:
        if self.router is None:
            raise ServeError("fleet is not running")
        return self.router.url

    @property
    def shard_urls(self) -> List[str]:
        return [server.url for server in self.servers]

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        # Reverse order unwinds the nested registry installs correctly.
        for server in reversed(self.servers):
            server.drain()
        self.servers = []

    def __enter__(self) -> "InProcessFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def resolve_fleet_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument > environment > default (2)."""
    if shards is None:
        raw = os.environ.get(FLEET_SHARDS_ENV, "").strip()
        if raw:
            try:
                shards = int(raw)
            except ValueError:
                raise ServeError(
                    f"{FLEET_SHARDS_ENV} must be an integer, got {raw!r}"
                )
        else:
            shards = 2
    if shards < 1:
        raise ServeError("fleet needs at least one shard")
    return int(shards)
