"""Content-addressed result store shared across serve instances.

The fleet-wide generalisation of the replay cache's persistence idea:
where :class:`~repro.sim.replay_cache.ReplayCache` shares *replay*
work between processes, the result store shares finished *job payloads*
between shards, keyed by :func:`~repro.serve.jobs.spec_digest`.  A
worker about to execute a job first probes the store; a hit finishes
the job instantly with the stored canonical bytes — cross-instance
dedup — and every computed payload is stored for the rest of the fleet.

Because payloads are canonical JSON serialised exactly once
(:func:`~repro.serve.jobs.execute_spec`), a store hit is byte-identical
to recomputation, so cross-shard dedup preserves the byte-identity
contract the single daemon already guarantees (pinned by
``tests/serve/test_identity.py``).

Backends
--------

- :class:`FileResultStore` — a directory of checksummed payload files,
  written atomically (temp file + ``os.replace``), safe for any number
  of shard processes sharing one filesystem.  This is the normal fleet
  deployment: every shard points ``REPRO_SERVE_STORE_DIR`` at the same
  directory.
- :class:`HTTPResultStore` — speaks ``GET/PUT /store/<digest>`` to
  another serve instance (every shard exposes its store over those
  endpoints), for fleets that span hosts without a shared filesystem.

Store failures are never fatal: a broken backend degrades to
recomputation (counted in ``serve.store.errors``), exactly like a
replay-cache miss.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ServeError
from repro.obs import metrics as _metrics

#: Environment variable naming a shared store directory.
STORE_DIR_ENV = "REPRO_SERVE_STORE_DIR"

#: Environment variable naming a remote store base URL (a serve
#: instance exposing ``/store``); the directory variable wins if both
#: are set.
STORE_URL_ENV = "REPRO_SERVE_STORE_URL"

#: Stored-entry container magic; the format is ``MAGIC +
#: blake2b(payload, 16) + payload`` (the replay cache's container
#: discipline, with the payload being the raw result bytes).
STORE_MAGIC = b"RSV1"

#: Bytes of blake2b digest embedded after the magic.
_DIGEST_SIZE = 16

#: Digests are run-manifest config digests: lowercase hex.  Anything
#: else is rejected before it can touch the filesystem or a URL.
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,128}$")


def check_digest(digest: str) -> str:
    """Validate a store key (defends the file/URL namespace)."""
    if not isinstance(digest, str) or not _DIGEST_RE.match(digest):
        raise ServeError(f"invalid result digest {digest!r}")
    return digest


def _pack(payload: bytes) -> bytes:
    check = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return STORE_MAGIC + check + payload


def _unpack(blob: bytes) -> bytes:
    header = len(STORE_MAGIC) + _DIGEST_SIZE
    if len(blob) < header or not blob.startswith(STORE_MAGIC):
        raise ValueError("not a result-store container")
    check, payload = blob[len(STORE_MAGIC):header], blob[header:]
    if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != check:
        raise ValueError("result-store checksum mismatch")
    return payload


class ResultStore:
    """Interface: content-addressed ``bytes`` by spec digest."""

    def get(self, digest: str) -> Optional[bytes]:
        """The stored payload, or None on miss (or any backend trouble)."""
        raise NotImplementedError

    def put(self, digest: str, payload: bytes) -> None:
        """Store a payload (best-effort: failures degrade, never raise)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """JSON-ready backend summary for health endpoints."""
        raise NotImplementedError


class FileResultStore(ResultStore):
    """Shared-directory backend (multi-process safe, checksummed).

    Entries are one file per digest; a corrupt entry (torn write from a
    crashed shard, bit rot) is quarantined — deleted, counted in
    ``serve.store.corrupt``, recomputed — never returned.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / f"{check_digest(digest)}.res"

    def get(self, digest: str) -> Optional[bytes]:
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            _metrics.counter_add("serve.store.misses")
            return None
        except OSError:
            _metrics.counter_add("serve.store.errors")
            return None
        try:
            payload = _unpack(blob)
        except ValueError:
            _metrics.counter_add("serve.store.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _metrics.counter_add("serve.store.hits")
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        path = self._path(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError:
            _metrics.counter_add("serve.store.errors")
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_pack(payload))
            os.replace(tmp_name, path)
        except OSError:
            _metrics.counter_add("serve.store.errors")
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        _metrics.counter_add("serve.store.stores")

    def stats(self) -> Dict[str, object]:
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*.res"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "backend": "file",
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total,
        }


class HTTPResultStore(ResultStore):
    """Remote backend over a serve instance's ``/store`` endpoints."""

    def __init__(self, url: str, timeout_s: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, digest: str, data=None) -> bytes:
        import urllib.request

        request = urllib.request.Request(
            f"{self.url}/store/{check_digest(digest)}",
            data=data,
            method=method,
        )
        with urllib.request.urlopen(
            request, timeout=self.timeout_s
        ) as response:
            return response.read()

    def get(self, digest: str) -> Optional[bytes]:
        import urllib.error

        try:
            payload = self._request("GET", digest)
        except urllib.error.HTTPError as error:
            if error.code == 404:
                _metrics.counter_add("serve.store.misses")
            else:
                _metrics.counter_add("serve.store.errors")
            return None
        except (urllib.error.URLError, OSError, ValueError):
            _metrics.counter_add("serve.store.errors")
            return None
        _metrics.counter_add("serve.store.hits")
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        import urllib.error

        try:
            self._request("PUT", digest, data=payload)
        except (urllib.error.URLError, OSError, ValueError):
            _metrics.counter_add("serve.store.errors")
            return
        _metrics.counter_add("serve.store.stores")

    def stats(self) -> Dict[str, object]:
        return {"backend": "http", "url": self.url}


def resolve_store(
    store_dir: Optional[str] = None, store_url: Optional[str] = None
) -> Optional[ResultStore]:
    """Build the configured store backend, or None when unconfigured.

    Explicit arguments win over ``REPRO_SERVE_STORE_DIR`` /
    ``REPRO_SERVE_STORE_URL``; a directory wins over a URL.  No
    configuration means no cross-instance sharing — exactly the
    single-daemon behaviour before the fleet existed.
    """
    if store_dir is None:
        store_dir = os.environ.get(STORE_DIR_ENV, "").strip() or None
    if store_url is None:
        store_url = os.environ.get(STORE_URL_ENV, "").strip() or None
    if store_dir is not None:
        return FileResultStore(store_dir)
    if store_url is not None:
        return HTTPResultStore(store_url)
    return None
