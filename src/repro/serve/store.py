"""Content-addressed result store shared across serve instances.

The fleet-wide generalisation of the replay cache's persistence idea:
where :class:`~repro.sim.replay_cache.ReplayCache` shares *replay*
work between processes, the result store shares finished *job payloads*
between shards, keyed by :func:`~repro.serve.jobs.spec_digest`.  A
worker about to execute a job first probes the store; a hit finishes
the job instantly with the stored canonical bytes — cross-instance
dedup — and every computed payload is stored for the rest of the fleet.

Because payloads are canonical JSON serialised exactly once
(:func:`~repro.serve.jobs.execute_spec`), a store hit is byte-identical
to recomputation, so cross-shard dedup preserves the byte-identity
contract the single daemon already guarantees (pinned by
``tests/serve/test_identity.py``).

Backends
--------

- :class:`FileResultStore` — a directory of checksummed payload files,
  written atomically (temp file + ``os.replace``), safe for any number
  of shard processes sharing one filesystem.  This is the normal fleet
  deployment: every shard points ``REPRO_SERVE_STORE_DIR`` at the same
  directory.
- :class:`HTTPResultStore` — speaks ``GET/PUT /store/<digest>`` to
  another serve instance (every shard exposes its store over those
  endpoints), for fleets that span hosts without a shared filesystem.

Store failures are never fatal: a broken backend degrades to
recomputation (counted in ``serve.store.errors``), exactly like a
replay-cache miss.

Garbage collection
------------------

The file backend is size-capped the same way the replay cache is
(``REPRO_CACHE_MAX_MB``): set ``REPRO_SERVE_STORE_MAX_MB`` and every
``put`` evicts least-recently-used entries (mtime order; reads
re-touch their entry) until the directory is back under the cap.  Two
protections keep eviction safe under live traffic:

- entries this process wrote or read are in its *live set* and are
  never evicted by it (the replay-cache discipline), and
- digests explicitly pinned via :meth:`ResultStore.pin` — the worker
  pool pins every in-flight digest for the duration of its execution —
  are never evicted either, so a payload cannot vanish between a
  router routing decision and the owning worker's store probe.

The cap may therefore be transiently exceeded rather than ever losing
a live result; evictions are counted in ``serve.store.evictions`` /
``serve.store.evicted_bytes``.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ServeError
from repro.obs import metrics as _metrics

#: Environment variable naming a shared store directory.
STORE_DIR_ENV = "REPRO_SERVE_STORE_DIR"

#: Environment variable capping the file backend's size in megabytes
#: (unset / empty / non-numeric / <= 0 means unbounded), mirroring the
#: replay cache's ``REPRO_CACHE_MAX_MB``.
STORE_MAX_MB_ENV = "REPRO_SERVE_STORE_MAX_MB"

#: Environment variable naming a remote store base URL (a serve
#: instance exposing ``/store``); the directory variable wins if both
#: are set.
STORE_URL_ENV = "REPRO_SERVE_STORE_URL"

#: Stored-entry container magic; the format is ``MAGIC +
#: blake2b(payload, 16) + payload`` (the replay cache's container
#: discipline, with the payload being the raw result bytes).
STORE_MAGIC = b"RSV1"

#: Bytes of blake2b digest embedded after the magic.
_DIGEST_SIZE = 16

#: Digests are run-manifest config digests: lowercase hex.  Anything
#: else is rejected before it can touch the filesystem or a URL.
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,128}$")


def store_max_bytes() -> Optional[int]:
    """The configured size cap in bytes (``REPRO_SERVE_STORE_MAX_MB``),
    or None for unbounded (unset, empty, non-numeric or <= 0)."""
    raw = os.environ.get(STORE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def check_digest(digest: str) -> str:
    """Validate a store key (defends the file/URL namespace)."""
    if not isinstance(digest, str) or not _DIGEST_RE.match(digest):
        raise ServeError(f"invalid result digest {digest!r}")
    return digest


def _pack(payload: bytes) -> bytes:
    check = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return STORE_MAGIC + check + payload


def _unpack(blob: bytes) -> bytes:
    header = len(STORE_MAGIC) + _DIGEST_SIZE
    if len(blob) < header or not blob.startswith(STORE_MAGIC):
        raise ValueError("not a result-store container")
    check, payload = blob[len(STORE_MAGIC):header], blob[header:]
    if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != check:
        raise ValueError("result-store checksum mismatch")
    return payload


class ResultStore:
    """Interface: content-addressed ``bytes`` by spec digest."""

    def get(self, digest: str) -> Optional[bytes]:
        """The stored payload, or None on miss (or any backend trouble)."""
        raise NotImplementedError

    def put(self, digest: str, payload: bytes) -> None:
        """Store a payload (best-effort: failures degrade, never raise)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """JSON-ready backend summary for health endpoints."""
        raise NotImplementedError

    def pin(self, digest: str) -> None:
        """Protect a digest from eviction while it is in flight.

        Pins are reference-counted; callers must balance with
        :meth:`unpin`.  Backends without eviction ignore pins.
        """

    def unpin(self, digest: str) -> None:
        """Release one :meth:`pin` reference on a digest."""


class FileResultStore(ResultStore):
    """Shared-directory backend (multi-process safe, checksummed).

    Entries are one file per digest; a corrupt entry (torn write from a
    crashed shard, bit rot) is quarantined — deleted, counted in
    ``serve.store.corrupt``, recomputed — never returned.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        #: Size cap for LRU-by-mtime eviction; defaults to
        #: ``REPRO_SERVE_STORE_MAX_MB``; None means unbounded.
        self.max_bytes = store_max_bytes() if max_bytes is None else max_bytes
        self.evictions = 0
        #: Entry file names this process wrote or hit — never evicted
        #: by it (the replay-cache live-set discipline).
        self._live: set = set()
        #: Reference-counted digests protected while in flight.
        self._pins: Dict[str, int] = {}
        self._pin_lock = threading.Lock()

    def _path(self, digest: str) -> Path:
        return self.root / f"{check_digest(digest)}.res"

    def pin(self, digest: str) -> None:
        with self._pin_lock:
            self._pins[digest] = self._pins.get(digest, 0) + 1

    def unpin(self, digest: str) -> None:
        with self._pin_lock:
            count = self._pins.get(digest, 0) - 1
            if count > 0:
                self._pins[digest] = count
            else:
                self._pins.pop(digest, None)

    def _protected(self, name: str) -> bool:
        """Whether an entry file name is exempt from eviction."""
        if name in self._live:
            return True
        digest = name[:-len(".res")] if name.endswith(".res") else name
        with self._pin_lock:
            return digest in self._pins

    def get(self, digest: str) -> Optional[bytes]:
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            _metrics.counter_add("serve.store.misses")
            return None
        except OSError:
            _metrics.counter_add("serve.store.errors")
            return None
        try:
            payload = _unpack(blob)
        except ValueError:
            _metrics.counter_add("serve.store.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._live.add(path.name)
        try:
            os.utime(path)  # LRU recency: a read re-touches its entry
        except OSError:
            pass
        _metrics.counter_add("serve.store.hits")
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        path = self._path(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError:
            _metrics.counter_add("serve.store.errors")
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_pack(payload))
            os.replace(tmp_name, path)
        except OSError:
            _metrics.counter_add("serve.store.errors")
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        self._live.add(path.name)
        _metrics.counter_add("serve.store.stores")
        self._enforce_cap()

    def _entries_by_age(self):
        out = []
        for path in self.root.glob("*.res"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((stat.st_mtime, stat.st_size, path))
        out.sort(key=lambda item: item[0])
        return out

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        Live (written/read here) and pinned (in-flight anywhere in this
        process) entries are exempt, so the cap can be transiently
        exceeded rather than ever evicting a payload a worker or the
        router is about to use.
        """
        if self.max_bytes is None or not self.root.is_dir():
            return
        entries = self._entries_by_age()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if self._protected(path.name):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1
            _metrics.counter_add("serve.store.evictions")
            _metrics.counter_add("serve.store.evicted_bytes", size)

    def stats(self) -> Dict[str, object]:
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*.res"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        with self._pin_lock:
            pinned = len(self._pins)
        return {
            "backend": "file",
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "pinned": pinned,
            "evictions": self.evictions,
        }


class HTTPResultStore(ResultStore):
    """Remote backend over a serve instance's ``/store`` endpoints."""

    def __init__(self, url: str, timeout_s: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, digest: str, data=None) -> bytes:
        import urllib.request

        request = urllib.request.Request(
            f"{self.url}/store/{check_digest(digest)}",
            data=data,
            method=method,
        )
        with urllib.request.urlopen(
            request, timeout=self.timeout_s
        ) as response:
            return response.read()

    def get(self, digest: str) -> Optional[bytes]:
        import urllib.error

        try:
            payload = self._request("GET", digest)
        except urllib.error.HTTPError as error:
            if error.code == 404:
                _metrics.counter_add("serve.store.misses")
            else:
                _metrics.counter_add("serve.store.errors")
            return None
        except (urllib.error.URLError, OSError, ValueError):
            _metrics.counter_add("serve.store.errors")
            return None
        _metrics.counter_add("serve.store.hits")
        return payload

    def put(self, digest: str, payload: bytes) -> None:
        import urllib.error

        try:
            self._request("PUT", digest, data=payload)
        except (urllib.error.URLError, OSError, ValueError):
            _metrics.counter_add("serve.store.errors")
            return
        _metrics.counter_add("serve.store.stores")

    def stats(self) -> Dict[str, object]:
        return {"backend": "http", "url": self.url}


def resolve_store(
    store_dir: Optional[str] = None, store_url: Optional[str] = None
) -> Optional[ResultStore]:
    """Build the configured store backend, or None when unconfigured.

    Explicit arguments win over ``REPRO_SERVE_STORE_DIR`` /
    ``REPRO_SERVE_STORE_URL``; a directory wins over a URL.  No
    configuration means no cross-instance sharing — exactly the
    single-daemon behaviour before the fleet existed.
    """
    if store_dir is None:
        store_dir = os.environ.get(STORE_DIR_ENV, "").strip() or None
    if store_url is None:
        store_url = os.environ.get(STORE_URL_ENV, "").strip() or None
    if store_dir is not None:
        return FileResultStore(store_dir)
    if store_url is not None:
        return HTTPResultStore(store_url)
    return None
