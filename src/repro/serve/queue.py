"""Priority job queue with digest deduplication and backpressure.

The queue is the service's single point of truth: every accepted job
lives in :attr:`JobQueue.jobs` from submission to terminal state, and
every state transition happens under one lock, so the HTTP handlers,
the worker pool and the drain path always observe a consistent picture.

Deduplication
-------------

Submissions are keyed by :func:`~repro.serve.jobs.spec_digest`.  While
a job for a digest is *live* (queued, running or done), submitting the
same digest coalesces onto it — no second computation is enqueued, the
existing job (and eventually its byte-identical result payload) is
returned to every caller, and ``serve.jobs.deduped`` counts the
coalesced submission.  A failed or cancelled job releases its digest:
the next submission computes afresh.

Backpressure
------------

``max_queued`` bounds the number of *queued* (not yet running) jobs;
beyond it :meth:`submit` raises
:class:`~repro.errors.QueueFullError`, which the HTTP layer renders as
429 with a ``Retry-After`` header.  Deduplicated submissions never
count against the bound — they add no work.

Dispatch order is priority-descending, FIFO within a priority
(a classic ``heapq`` over ``(-priority, seq)``).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueueFullError, ServeError
from repro.obs import metrics as _metrics
from repro.serve.jobs import Job, JobSpec, JobState, spec_digest

#: Default bound on queued (not yet running) jobs.
DEFAULT_MAX_QUEUED = 64

#: Default ``Retry-After`` seconds suggested on backpressure.
DEFAULT_RETRY_AFTER_S = 1.0


class JobQueue:
    """Bounded, deduplicating priority queue of :class:`Job`\\ s."""

    def __init__(
        self,
        max_queued: int = DEFAULT_MAX_QUEUED,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if max_queued < 1:
            raise ServeError("queue bound must be >= 1")
        self.max_queued = max_queued
        self.retry_after_s = retry_after_s
        #: Every job ever accepted by this queue instance, by id.
        self.jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        #: Notified on *every* job state transition — the event/condition
        #: seam long-poll waiters (and tests) coordinate on instead of
        #: sleep loops.
        self._changed = threading.Condition(self._lock)
        self._rejecting: Optional[str] = None
        self._dispatching = True

    # -- submission -------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        job_id: Optional[str] = None,
        enforce_bound: bool = True,
    ) -> Tuple[Job, bool]:
        """Accept (or coalesce) one spec; returns ``(job, deduped)``.

        ``job_id`` pins the id (journal restore); ``enforce_bound=False``
        bypasses backpressure (restore must never drop an already
        accepted job).  Raises :class:`~repro.errors.QueueFullError` on
        backpressure and :class:`~repro.errors.ServeError` (503) when
        the queue is draining.
        """
        digest = spec_digest(spec)
        with self._lock:
            if self._rejecting is not None:
                raise ServeError(self._rejecting, http_status=503)
            existing = self._by_digest.get(digest)
            if existing is not None and existing.state not in (
                JobState.FAILED, JobState.CANCELLED
            ):
                existing.submissions += 1
                _metrics.counter_add("serve.jobs.deduped")
                return existing, True
            if enforce_bound and self._queued_count() >= self.max_queued:
                _metrics.counter_add("serve.jobs.rejected")
                raise QueueFullError(
                    f"queue full ({self.max_queued} jobs queued); "
                    f"retry in {self.retry_after_s:g}s",
                    retry_after_s=self.retry_after_s,
                )
            job = Job(spec, digest, priority=priority, job_id=job_id)
            self.jobs[job.id] = job
            self._by_digest[digest] = job
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            _metrics.counter_add("serve.jobs.submitted")
            self._gauge_depth()
            self._available.notify()
            self._changed.notify_all()
            return job, False

    # -- dispatch (worker side) -------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it RUNNING.

        Returns None on timeout or while dispatch is paused (drain).
        Cancelled jobs sitting in the heap are skipped lazily.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                if self._dispatching:
                    while self._heap:
                        _, _, job = heapq.heappop(self._heap)
                        if job.state is JobState.QUEUED:
                            job.mark_running()
                            self._gauge_depth()
                            self._changed.notify_all()
                            return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._available.wait(remaining)

    def finish(
        self, job: Job, result_bytes: bytes, computed: bool = True
    ) -> None:
        """Record a completed job (exactly once per job).

        ``computed=False`` marks a job satisfied from the shared result
        store rather than executed here: it counts in
        ``serve.jobs.store_satisfied`` instead of ``serve.jobs.executed``
        so "one computation per digest" stays measurable fleet-wide.
        """
        with self._lock:
            job.mark_done(result_bytes)
            _metrics.counter_add(
                "serve.jobs.executed" if computed
                else "serve.jobs.store_satisfied"
            )
            self._gauge_depth()
            self._changed.notify_all()

    def fail(self, job: Job, error: Exception) -> None:
        """Record a failed computation; releases the digest for retry."""
        with self._lock:
            job.mark_failed(error)
            if self._by_digest.get(job.digest) is job:
                del self._by_digest[job.digest]
            _metrics.counter_add("serve.jobs.failed")
            self._gauge_depth()
            self._changed.notify_all()

    # -- control ----------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a still-queued job; raises 409 once it is running."""
        with self._lock:
            job = self._job(job_id)
            if job.state is not JobState.QUEUED:
                raise ServeError(
                    f"job {job_id} is {job.state.value}; only queued jobs "
                    "can be cancelled",
                    http_status=409,
                )
            job.mark_cancelled()
            if self._by_digest.get(job.digest) is job:
                del self._by_digest[job.digest]
            _metrics.counter_add("serve.jobs.cancelled")
            self._gauge_depth()
            self._changed.notify_all()
            return job

    def reject_submissions(self, message: str) -> None:
        """Refuse new submissions from now on (drain; rendered as 503)."""
        with self._lock:
            self._rejecting = message

    def pause_dispatch(self) -> None:
        """Stop handing queued jobs to workers (they stay QUEUED)."""
        with self._available:
            self._dispatching = False
            self._available.notify_all()

    def resume_dispatch(self) -> None:
        """Resume handing queued jobs to workers after pause_dispatch."""
        with self._available:
            self._dispatching = True
            self._available.notify_all()

    # -- inspection -------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """Look a job up by id; raises 404 on an unknown id."""
        with self._lock:
            return self._job(job_id)

    def wait_for_state(
        self,
        job_id: str,
        target: str,
        timeout: Optional[float] = None,
    ) -> Job:
        """Block until a job reaches ``target`` (or any terminal state).

        ``target`` is ``"running"`` (satisfied by RUNNING *or* anything
        terminal — a store-satisfied job can go straight to DONE) or
        ``"terminal"``.  Returns the job once satisfied, or at timeout in
        whatever state it is then — the caller reads ``job.state``.  This
        is the long-poll seam behind ``GET /jobs/<id>?wait=...``: waiters
        park on a condition notified by every transition, no sleep
        polling anywhere.
        """
        import time

        if target not in ("running", "terminal"):
            raise ServeError(
                f"unknown wait target {target!r}; use 'running' or "
                "'terminal'"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while True:
                job = self._job(job_id)
                if job.state.terminal or (
                    target == "running" and job.state is JobState.RUNNING
                ):
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job
                self._changed.wait(remaining)

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}", http_status=404)
        return job

    def queued_jobs(self) -> List[Job]:
        """Snapshot of QUEUED jobs in dispatch order (drain journaling)."""
        with self._lock:
            return [
                job
                for _, _, job in sorted(self._heap)
                if job.state is JobState.QUEUED
            ]

    def running_jobs(self) -> List[Job]:
        """Snapshot of RUNNING jobs."""
        with self._lock:
            return [
                job for job in self.jobs.values()
                if job.state is JobState.RUNNING
            ]

    def counts(self) -> Dict[str, int]:
        """State histogram over every job this queue has accepted."""
        with self._lock:
            out = {state.value: 0 for state in JobState}
            for job in self.jobs.values():
                out[job.state.value] += 1
            return out

    def describe(self) -> List[Dict[str, Any]]:
        """Status records for every job, newest submission first."""
        with self._lock:
            jobs = sorted(
                self.jobs.values(), key=lambda j: j.submitted_unix,
                reverse=True,
            )
            return [job.describe() for job in jobs]

    def _queued_count(self) -> int:
        return sum(
            1 for job in self.jobs.values() if job.state is JobState.QUEUED
        )

    def _gauge_depth(self) -> None:
        _metrics.gauge_set("serve.queue.depth", self._queued_count())
