"""Chaos-harness seams: computation logging for loss accounting.

The fleet chaos tests (``tests/serve/test_chaos.py``,
``tools/chaos_smoke.py``) need to know *how many times each spec
digest was actually computed* across every shard process — that is the
"exactly one computation per digest" half of the zero-loss contract,
and no single process can see it because computations happen in shard
subprocesses.

:func:`log_computation` is a :data:`~repro.serve.executor.JOB_HOOK_ENV`
hook (``REPRO_SERVE_JOB_HOOK=repro.serve.chaos:log_computation``) that
appends the job's spec digest to the file named by
:data:`CHAOS_LOG_ENV`, one digest per line.  The append is a single
``O_APPEND`` write — atomic on POSIX for these short lines — so any
number of worker threads in any number of shard processes share one
log without locks.  After logging it delegates to
:func:`repro.loadgen.pacing.emulate_service_time`, so one hook gives
the chaos tests both the accounting *and* the calibrated service-time
window they need to SIGKILL a shard mid-computation.

A SIGKILL can land *after* a worker logged a digest but *before* the
result reached the store, so the recovery recomputes it: the invariant
the harness asserts is therefore "every digest logged at least once,
at most ``1 + workers-on-killed-shard`` times, never more" — the
excess is bounded by what was in flight at the moment of the kill.
"""

from __future__ import annotations

import os

from repro.loadgen.pacing import emulate_service_time
from repro.serve.jobs import JobSpec, spec_digest

#: Environment variable naming the shared computation-log file.
CHAOS_LOG_ENV = "REPRO_CHAOS_LOG"


def log_computation(spec: JobSpec) -> None:
    """Append the spec's digest to the chaos log, then pace the job."""
    path = os.environ.get(CHAOS_LOG_ENV, "").strip()
    if path:
        line = (spec_digest(spec) + "\n").encode("ascii")
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
    emulate_service_time(spec)


def read_log(path: str) -> dict:
    """``{digest: computation_count}`` from a chaos log file."""
    counts: dict = {}
    try:
        with open(path, "r", encoding="ascii") as handle:
            for line in handle:
                digest = line.strip()
                if digest:
                    counts[digest] = counts.get(digest, 0) + 1
    except FileNotFoundError:
        pass
    return counts
