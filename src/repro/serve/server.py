"""The experiment service daemon: stdlib HTTP JSON API over the engine.

One :class:`ExperimentServer` owns the four moving parts — the
deduplicating :class:`~repro.serve.queue.JobQueue`, the
:class:`~repro.serve.executor.WorkerPool`, the drain
:class:`~repro.serve.journal.JobJournal` and a
:class:`~http.server.ThreadingHTTPServer` — and wires them to the
process's :mod:`repro.obs` registry so engine-level telemetry (replay
cache hits, validation quarantines, per-job timers) is visible at
``/metrics``.

Endpoints (all JSON; errors use the ``error[<code>]`` contract)::

    GET  /healthz              liveness + queue/worker/cache summary
    GET  /metrics              the full obs registry snapshot
    POST /jobs                 submit a job spec -> 202 {job, deduped}
                               (429 + Retry-After on backpressure,
                                503 while draining)
    POST /plan                 submit a DSE-planner job ({scale, seed})
                               at the plan priority tier -> 202
    GET  /jobs                 every job's status record
    GET  /jobs/<id>            one job's status record; with
                               ``?wait=running|terminal&timeout_s=N``
                               long-polls on the queue's condition until
                               the job reaches that state (no sleep
                               polling, bounded by the timeout)
    GET  /jobs/<id>/result     the result payload (DONE jobs; 409 while
                               pending, 500 for failed, 410 cancelled)
    POST /jobs/<id>/cancel     cancel a still-queued job (409 later)
    GET  /store/<digest>       raw stored result bytes from the shared
                               result store (404 miss, 503 if no store)
    PUT  /store/<digest>       publish result bytes into the store

Lifecycle: :meth:`ExperimentServer.start` binds, restores any journaled
queued jobs from a previous drain, and spawns workers;
:meth:`~ExperimentServer.drain` (normally triggered by SIGTERM through
:meth:`~ExperimentServer.install_signal_handlers`) stops accepting,
lets in-flight jobs finish, journals the still-queued ones and shuts
the listener down — no accepted job is ever lost across
drain + restart.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    ExperimentError,
    QueueFullError,
    ReproError,
    ServeError,
    render_error,
)
from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry
from repro.serve.executor import WorkerPool
from repro.serve.journal import JobJournal
from repro.serve.jobs import PLAN_PRIORITY, JobState, normalize_spec
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_RETRY_AFTER_S,
    JobQueue,
)
from repro.serve.store import ResultStore, resolve_store
from repro.sim.parallel import FaultPolicy

#: Environment variables configuring the daemon (flags win over these).
HOST_ENV = "REPRO_SERVE_HOST"
PORT_ENV = "REPRO_SERVE_PORT"
QUEUE_MAX_ENV = "REPRO_SERVE_QUEUE_MAX"
DIR_ENV = "REPRO_SERVE_DIR"
RETRY_AFTER_ENV = "REPRO_SERVE_RETRY_AFTER"

#: Defaults when neither argument nor environment decide.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Hard ceiling on one long-poll round; clients re-issue rounds, so the
#: cap bounds how long a dead client can pin a handler thread.
LONG_POLL_MAX_S = 60.0


def _env_str(name: str, default: str) -> str:
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def _env_number(name: str, default: float, integer: bool = False):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw) if integer else float(raw)
    except ValueError:
        kind = "an integer" if integer else "a number"
        raise ExperimentError(f"{name} must be {kind}, got {raw!r}")


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-pointer to the service."""

    daemon_threads = True
    experiment_server: "ExperimentServer"


class _Handler(BaseHTTPRequestHandler):
    """Request handler: thin routing over the owning server's queue."""

    server: _ServeHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if os.environ.get("REPRO_SERVE_LOG", "").strip():
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(status, body, extra_headers=extra_headers)

    def _send_error_payload(self, error: ReproError) -> None:
        headers = {}
        if isinstance(error, QueueFullError):
            headers["Retry-After"] = f"{error.retry_after_s:g}"
        self._send_json(
            getattr(error, "http_status", 400),
            {"error": render_error(error), "code": error.code},
            extra_headers=headers,
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    def _route(self, method: str) -> None:
        service = self.server.experiment_server
        try:
            handled = service.handle(method, self.path, self)
        except ReproError as error:
            self._send_error_payload(error)
            return
        except Exception as error:  # never leak a traceback to the wire
            self._send_error_payload(
                ServeError(f"internal error: {error}", http_status=500)
            )
            return
        if not handled:
            self._send_error_payload(
                ServeError(
                    f"unknown endpoint {method} {self.path}", http_status=404
                )
            )

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._route("PUT")


class ExperimentServer:
    """The long-running experiment service (see module docstring)."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        max_queued: Optional[int] = None,
        state_dir: Optional[str] = None,
        retry_after_s: Optional[float] = None,
        policy: Optional[FaultPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        store_dir: Optional[str] = None,
        store_url: Optional[str] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.host = host if host is not None else _env_str(HOST_ENV, DEFAULT_HOST)
        self.port = (
            port
            if port is not None
            else int(_env_number(PORT_ENV, DEFAULT_PORT, integer=True))
        )
        if max_queued is None:
            max_queued = int(
                _env_number(QUEUE_MAX_ENV, DEFAULT_MAX_QUEUED, integer=True)
            )
        if retry_after_s is None:
            retry_after_s = float(
                _env_number(RETRY_AFTER_ENV, DEFAULT_RETRY_AFTER_S)
            )
        self.state_dir = (
            state_dir
            if state_dir is not None
            else (os.environ.get(DIR_ENV, "").strip() or None)
        )
        self.store = (
            store if store is not None else resolve_store(store_dir, store_url)
        )
        self.queue = JobQueue(max_queued=max_queued, retry_after_s=retry_after_s)
        self.pool = WorkerPool(
            self.queue, workers=workers, policy=policy,
            state_dir=self.state_dir, store=self.store,
        )
        self.journal = (
            JobJournal(self.state_dir) if self.state_dir is not None else None
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous_registry: Optional[MetricsRegistry] = None
        self._httpd: Optional[_ServeHTTPServer] = None
        self._listener: Optional[threading.Thread] = None
        self._drain_requested = threading.Event()
        self._drained = False
        self.started_unix: Optional[float] = None
        self.restored_jobs = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` ephemerals."""
        if self._httpd is None:
            return (self.host, self.port)
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ExperimentServer":
        """Bind, restore journaled jobs, spawn workers and the listener."""
        if self._httpd is not None:
            raise ServeError("server already started", http_status=500)
        self._previous_registry = _metrics.get_registry()
        _metrics.enable(self.registry)
        self._restore_journal()
        self._httpd = _ServeHTTPServer((self.host, self.port), _Handler)
        self._httpd.experiment_server = self
        self.pool.start()
        self._listener = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-listener",
            daemon=True,
        )
        self._listener.start()
        self.started_unix = time.time()
        return self

    def _restore_journal(self) -> None:
        if self.journal is None:
            return
        for record in self.journal.load():
            try:
                spec = normalize_spec(record["spec"])
                job, deduped = self.queue.submit(
                    spec,
                    priority=int(record.get("priority", 0)),
                    job_id=str(record["id"]),
                    enforce_bound=False,
                )
            except ReproError:
                _metrics.counter_add("serve.journal.corrupt")
                continue
            if not deduped:
                job.submitted_unix = float(
                    record.get("submitted_unix", job.submitted_unix)
                )
                self.restored_jobs += 1
                _metrics.counter_add("serve.jobs.restored")
        self.journal.clear()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a drain request (main thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_drain())

    def request_drain(self) -> None:
        """Ask for a graceful drain (signal-safe, idempotent)."""
        self._drain_requested.set()

    def wait_for_drain_request(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain has been requested."""
        return self._drain_requested.wait(timeout)

    def drain(self) -> Dict[str, Any]:
        """Gracefully stop: finish in-flight, journal queued, shut down.

        Returns a summary dict (journaled/completed counts).  Idempotent:
        a second call returns the first call's effect shape with zero
        newly journaled jobs.
        """
        self._drain_requested.set()
        self.queue.reject_submissions(
            "service is draining; resubmit after restart"
        )
        self.queue.pause_dispatch()
        queued = self.queue.queued_jobs()
        journaled = 0
        if self.journal is not None and not self._drained:
            journaled = self.journal.write_jobs(queued)
        self.pool.stop(wait=True)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._listener is not None:
            self._listener.join(timeout=5.0)
            self._listener = None
        if not self._drained:
            if self._previous_registry is not None:
                _metrics.enable(self._previous_registry)
            elif _metrics.get_registry() is self.registry:
                _metrics.disable()
            self._previous_registry = None
        self._drained = True
        counts = self.queue.counts()
        return {
            "journaled": journaled,
            "queued": len(queued),
            "done": counts[JobState.DONE.value],
            "failed": counts[JobState.FAILED.value],
            "cancelled": counts[JobState.CANCELLED.value],
        }

    def serve_until_drained(self, stream=None) -> Dict[str, Any]:
        """The daemon main loop: start, announce, wait for SIGTERM, drain."""
        import sys

        if stream is None:
            stream = sys.stdout
        self.install_signal_handlers()
        self.start()
        stream.write(f"repro-serve listening on {self.url}\n")
        if self.restored_jobs:
            stream.write(
                f"restored {self.restored_jobs} journaled jobs from "
                f"{self.state_dir}\n"
            )
        stream.flush()
        while not self.wait_for_drain_request(timeout=60.0):
            pass
        summary = self.drain()
        stream.write(
            f"drained: {summary['done']} done, {summary['journaled']} "
            f"queued jobs journaled"
            + (f" to {self.state_dir}" if self.state_dir else "")
            + "\n"
        )
        stream.flush()
        return summary

    # -- request handling -------------------------------------------------

    def handle(self, method: str, path: str, http: _Handler) -> bool:
        """Route one request; returns False for an unknown endpoint."""
        from urllib.parse import parse_qs

        path, _, query_string = path.partition("?")
        query = parse_qs(query_string)
        path = path.rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            http._send_json(200, self._health())
            return True
        if method == "GET" and path == "/metrics":
            http._send_json(200, self.registry.snapshot())
            return True
        if method == "POST" and path == "/jobs":
            self._submit(http)
            return True
        if method == "POST" and path == "/plan":
            self._plan(http)
            return True
        if method == "GET" and path == "/jobs":
            http._send_json(200, {"jobs": self.queue.describe()})
            return True
        parts = path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "store":
            if method == "GET":
                self._store_get(http, parts[1])
                return True
            if method == "PUT":
                self._store_put(http, parts[1])
                return True
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            if method == "GET" and len(parts) == 2:
                self._job_status(http, job_id, query)
                return True
            if method == "GET" and len(parts) == 3 and parts[2] == "result":
                self._result(http, job_id)
                return True
            if method == "POST" and len(parts) == 3 and parts[2] == "cancel":
                job = self.queue.cancel(job_id)
                http._send_json(200, {"job": job.describe()})
                return True
        return False

    def _health(self) -> Dict[str, Any]:
        from repro import __version__
        from repro.sim.replay_cache import ReplayCache

        counts = self.queue.counts()
        return {
            "status": "draining" if self._drain_requested.is_set() else "ok",
            "version": __version__,
            "uptime_s": (
                time.time() - self.started_unix if self.started_unix else 0.0
            ),
            "queue": counts,
            "queued": counts[JobState.QUEUED.value],
            "running": counts[JobState.RUNNING.value],
            "queue_bound": self.queue.max_queued,
            "workers": self.pool.workers,
            "state_dir": self.state_dir,
            "cache": ReplayCache().stats(),
            "store": self.store.stats() if self.store is not None else None,
        }

    def _job_status(self, http: _Handler, job_id: str, query) -> None:
        """``GET /jobs/<id>`` — immediate, or a long-poll round."""
        wait = (query.get("wait") or [None])[0]
        if wait is None:
            job = self.queue.job(job_id)
        else:
            raw = (query.get("timeout_s") or ["30"])[0]
            try:
                timeout = float(raw)
            except ValueError:
                raise ServeError(f"timeout_s must be a number, got {raw!r}")
            timeout = min(max(timeout, 0.0), LONG_POLL_MAX_S)
            job = self.queue.wait_for_state(job_id, wait, timeout=timeout)
        http._send_json(200, {"job": job.describe()})

    def _store_get(self, http: _Handler, digest: str) -> None:
        if self.store is None:
            raise ServeError("no result store configured", http_status=503)
        payload = self.store.get(digest)
        if payload is None:
            raise ServeError(
                f"no stored result for digest {digest!r}", http_status=404
            )
        http._send(200, payload, content_type="application/octet-stream")

    def _store_put(self, http: _Handler, digest: str) -> None:
        if self.store is None:
            raise ServeError("no result store configured", http_status=503)
        length = int(http.headers.get("Content-Length") or 0)
        payload = http.rfile.read(length) if length else b""
        if not payload:
            raise ServeError("store payload must be non-empty")
        self.store.put(digest, payload)
        http._send_json(200, {"stored": digest, "bytes": len(payload)})

    def _submit(self, http: _Handler) -> None:
        body = http._read_body()
        priority = 0
        if "priority" in body:
            from repro.validate.schema import coerce_number

            priority = int(
                coerce_number(
                    "priority", body["priority"], lo=-1000, hi=1000,
                    integer=True, error=ServeError,
                )
            )
        spec = normalize_spec(body)
        job, deduped = self.queue.submit(spec, priority=priority)
        http._send_json(202, {"job": job.describe(), "deduped": deduped})

    def _plan(self, http: _Handler) -> None:
        """``POST /plan``: a DSE-planner job at the plan priority tier.

        The body carries only ``scale``/``seed`` — the experiment is
        forced to ``dse``, and the job rides above the user priority
        band (:data:`~repro.serve.jobs.PLAN_PRIORITY`): the planner
        dispatches a pruned fraction of its grid, so letting it jump
        the queue costs little and unblocks design decisions early.
        """
        from repro.validate.schema import validate_keys

        body = http._read_body()
        validate_keys(body.keys(), ("scale", "seed"),
                      kind="plan request key", error=ServeError)
        spec = normalize_spec(dict(body, experiment="dse"))
        job, deduped = self.queue.submit(spec, priority=PLAN_PRIORITY)
        _metrics.counter_add("serve.plans.submitted")
        http._send_json(202, {"job": job.describe(), "deduped": deduped})

    def _result(self, http: _Handler, job_id: str) -> None:
        job = self.queue.job(job_id)
        if job.state is JobState.DONE:
            assert job.result_bytes is not None
            http._send(200, job.result_bytes)
            return
        if job.state is JobState.FAILED:
            raise ServeError(
                f"job {job_id} failed: {job.error} "
                f"[{job.error_code}]",
                http_status=500,
            )
        if job.state is JobState.CANCELLED:
            raise ServeError(f"job {job_id} was cancelled", http_status=410)
        raise ServeError(
            f"job {job_id} is {job.state.value}; poll /jobs/{job_id} until "
            "it is done",
            http_status=409,
        )
