"""Client for the experiment service: urllib over the JSON API.

:class:`ServeClient` is what ``repro-cli submit|status|fetch`` (and the
tests, and the CI smoke job) speak through.  Error responses are mapped
back into the structured error hierarchy: a 429 becomes a
:class:`~repro.errors.QueueFullError` carrying the server's
``Retry-After`` hint, anything else with a JSON error body becomes a
:class:`~repro.errors.ServeError` whose ``code`` is the server-side
error code — so a caller sees the same ``error[<code>]`` rendering
whether the failure happened locally or across the wire.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import QueueFullError, ServeError

#: Environment variable naming the service base URL.
URL_ENV = "REPRO_SERVE_URL"

#: Default base URL (the daemon's default bind address).
DEFAULT_URL = "http://127.0.0.1:8765"


def resolve_url(url: Optional[str] = None) -> str:
    """Base URL: explicit argument > ``REPRO_SERVE_URL`` > default."""
    if url is None:
        url = os.environ.get(URL_ENV, "").strip() or DEFAULT_URL
    return url.rstrip("/")


class ServeClient:
    """Thin JSON client over one service base URL."""

    def __init__(
        self, url: Optional[str] = None, timeout_s: float = 30.0
    ) -> None:
        self.url = resolve_url(url)
        self.timeout_s = timeout_s

    # -- transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise self._to_error(error)
        except urllib.error.URLError as error:
            raise ServeError(
                f"cannot reach experiment service at {self.url}: "
                f"{error.reason}",
                http_status=503,
            )

    @staticmethod
    def _to_error(error: urllib.error.HTTPError) -> ServeError:
        """Rebuild the server's structured error from an HTTP response."""
        raw = error.read()
        message = f"HTTP {error.code}"
        code = None
        try:
            payload = json.loads(raw)
            message = str(payload.get("error", message))
            code = payload.get("code")
        except (json.JSONDecodeError, AttributeError):
            if raw:
                message = f"{message}: {raw[:200]!r}"
        if error.code == 429:
            try:
                retry_after = float(error.headers.get("Retry-After", "1"))
            except (TypeError, ValueError):
                retry_after = 1.0
            return QueueFullError(message, retry_after_s=retry_after)
        out = ServeError(message, http_status=error.code)
        if isinstance(code, str) and code:
            out.code = code
        return out

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return json.loads(self._request(method, path, body))

    # -- API --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics`` — the service's obs registry snapshot."""
        return self._json("GET", "/metrics")

    def submit(
        self,
        experiment: str,
        scale: float = 1.0,
        seed: Optional[int] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """``POST /jobs`` — returns ``{"job": {...}, "deduped": bool}``."""
        body: Dict[str, Any] = {"experiment": experiment, "scale": scale}
        if seed is not None:
            body["seed"] = seed
        if priority:
            body["priority"] = priority
        return self._json("POST", "/jobs", body)

    def plan(
        self, scale: float = 1.0, seed: Optional[int] = None
    ) -> Dict[str, Any]:
        """``POST /plan`` — a DSE-planner job at the plan priority tier.

        Returns ``{"job": {...}, "deduped": bool}`` like :meth:`submit`;
        the server forces ``experiment="dse"`` and queues the job above
        the user priority band.
        """
        body: Dict[str, Any] = {"scale": scale}
        if seed is not None:
            body["seed"] = seed
        return self._json("POST", "/plan", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — the job's status record."""
        return self._json("GET", f"/jobs/{job_id}")["job"]

    def list_jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — every job's status record."""
        return self._json("GET", "/jobs")["jobs"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/<id>/result`` — the raw canonical payload bytes."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The result payload, parsed."""
        return json.loads(self.result_bytes(job_id))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>/cancel``."""
        return self._json("POST", f"/jobs/{job_id}/cancel")["job"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record.

        Raises :class:`~repro.errors.ServeError` on timeout.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout_s:g}s waiting for job "
                    f"{job_id} (last state: {record['state']})",
                    http_status=504,
                )
            time.sleep(poll_s)
