"""Client for the experiment service: urllib over the JSON API.

:class:`ServeClient` is what ``repro-cli submit|status|fetch`` (and the
tests, and the CI smoke job) speak through.  Error responses are mapped
back into the structured error hierarchy: a 429 becomes a
:class:`~repro.errors.QueueFullError` carrying the server's
``Retry-After`` hint, a router 503 with code ``DEGRADED`` becomes a
:class:`~repro.errors.DegradedError` (retryable — see
:func:`submit_with_backoff`), anything else with a JSON error body becomes a
:class:`~repro.errors.ServeError` whose ``code`` is the server-side
error code — so a caller sees the same ``error[<code>]`` rendering
whether the failure happened locally or across the wire.

Waiting is long-poll, not sleep-poll: :meth:`ServeClient.wait` issues
``GET /jobs/<id>?wait=terminal&timeout_s=N`` rounds, each parked on the
server's state-transition condition, so a finished job is observed
within one wire round-trip instead of a poll interval.

:class:`ShardedClient` is client-side fleet routing: it holds one
:class:`~repro.serve.ring.HashRing` over the shard base URLs and sends
each submission to the shard owning its
:func:`~repro.serve.jobs.spec_digest` — the same placement the router
process computes, so a fleet can be driven with or without a router in
front.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import DegradedError, QueueFullError, ServeError

#: Environment variable naming the service base URL.
URL_ENV = "REPRO_SERVE_URL"

#: Environment variable listing shard base URLs (comma-separated) for
#: client-side routing when no router process fronts the fleet.
SHARDS_ENV = "REPRO_SERVE_SHARDS"

#: Default base URL (the daemon's default bind address).
DEFAULT_URL = "http://127.0.0.1:8765"

#: Transport allowance on top of a long-poll round: the socket read
#: timeout must strictly exceed the server-side park duration or the
#: two expire in a dead heat and the client sees a raw socket timeout
#: instead of the server's in-whatever-state-it-is response.
LONG_POLL_GRACE_S = 10.0


def resolve_url(url: Optional[str] = None) -> str:
    """Base URL: explicit argument > ``REPRO_SERVE_URL`` > default."""
    if url is None:
        url = os.environ.get(URL_ENV, "").strip() or DEFAULT_URL
    return url.rstrip("/")


def resolve_shards(shards=None) -> List[str]:
    """Shard URL list: explicit argument > ``REPRO_SERVE_SHARDS`` > []."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        shards = [part for part in raw.split(",") if part.strip()]
    return [url.strip().rstrip("/") for url in shards]


class ServeClient:
    """Thin JSON client over one service base URL."""

    def __init__(
        self, url: Optional[str] = None, timeout_s: float = 30.0
    ) -> None:
        self.url = resolve_url(url)
        self.timeout_s = timeout_s

    # -- transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise self._to_error(error)
        except urllib.error.URLError as error:
            if isinstance(error.reason, TimeoutError):
                raise ServeError(
                    f"no response from {self.url} within {timeout:g}s",
                    http_status=504,
                )
            raise ServeError(
                f"cannot reach experiment service at {self.url}: "
                f"{error.reason}",
                http_status=503,
            )
        except TimeoutError:
            # urllib wraps connect timeouts in URLError but lets read
            # timeouts escape raw; both are the same transport failure.
            raise ServeError(
                f"no response from {self.url} within {timeout:g}s",
                http_status=504,
            )

    @staticmethod
    def _to_error(error: urllib.error.HTTPError) -> ServeError:
        """Rebuild the server's structured error from an HTTP response."""
        raw = error.read()
        message = f"HTTP {error.code}"
        code = None
        try:
            payload = json.loads(raw)
            message = str(payload.get("error", message))
            code = payload.get("code")
        except (json.JSONDecodeError, AttributeError):
            if raw:
                message = f"{message}: {raw[:200]!r}"
        try:
            retry_after = float(error.headers.get("Retry-After", "1"))
        except (TypeError, ValueError):
            retry_after = 1.0
        if error.code == 429:
            return QueueFullError(message, retry_after_s=retry_after)
        if code == "DEGRADED":
            return DegradedError(message, retry_after_s=retry_after)
        out = ServeError(message, http_status=error.code)
        if isinstance(code, str) and code:
            out.code = code
        return out

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return json.loads(
            self._request(method, path, body, timeout_s=timeout_s)
        )

    # -- API --------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics`` — the service's obs registry snapshot."""
        return self._json("GET", "/metrics")

    def ring(self) -> Dict[str, Any]:
        """``GET /ring`` — fleet membership, ring version, per-shard
        health and store occupancy (router endpoints only)."""
        return self._json("GET", "/ring")

    def ring_join(self, url: str) -> Dict[str, Any]:
        """``POST /ring/join`` — add a shard to the router's live ring."""
        return self._json("POST", "/ring/join", {"url": url})

    def ring_leave(self, url: str, forget: bool = False) -> Dict[str, Any]:
        """``POST /ring/leave`` — remove a shard from the live ring."""
        return self._json(
            "POST", "/ring/leave", {"url": url, "forget": forget}
        )

    def submit(
        self,
        experiment: str,
        scale: float = 1.0,
        seed: Optional[int] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """``POST /jobs`` — returns ``{"job": {...}, "deduped": bool}``."""
        body: Dict[str, Any] = {"experiment": experiment, "scale": scale}
        if seed is not None:
            body["seed"] = seed
        if priority:
            body["priority"] = priority
        return self._json("POST", "/jobs", body)

    def plan(
        self, scale: float = 1.0, seed: Optional[int] = None
    ) -> Dict[str, Any]:
        """``POST /plan`` — a DSE-planner job at the plan priority tier.

        Returns ``{"job": {...}, "deduped": bool}`` like :meth:`submit`;
        the server forces ``experiment="dse"`` and queues the job above
        the user priority band.
        """
        body: Dict[str, Any] = {"scale": scale}
        if seed is not None:
            body["seed"] = seed
        return self._json("POST", "/plan", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — the job's status record."""
        return self._json("GET", f"/jobs/{job_id}")["job"]

    def list_jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — every job's status record."""
        return self._json("GET", "/jobs")["jobs"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /jobs/<id>/result`` — the raw canonical payload bytes."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The result payload, parsed."""
        return json.loads(self.result_bytes(job_id))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>/cancel``."""
        return self._json("POST", f"/jobs/{job_id}/cancel")["job"]

    def wait_state(
        self, job_id: str, target: str, timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        """One long-poll round: ``GET /jobs/<id>?wait=<target>``.

        Returns the job record when it reaches ``target`` ("running" or
        "terminal") or at the round's timeout in whatever state it is
        then — the caller inspects ``record["state"]``.  The transport
        timeout is the round plus :data:`LONG_POLL_GRACE_S` so the
        server-side park always resolves first.
        """
        return self._json(
            "GET",
            f"/jobs/{job_id}?wait={target}&timeout_s={timeout_s:g}",
            timeout_s=max(self.timeout_s, timeout_s + LONG_POLL_GRACE_S),
        )["job"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 15.0,
    ) -> Dict[str, Any]:
        """Long-poll until the job is terminal; returns its record.

        ``poll_s`` bounds one long-poll round (the server parks the
        request on its state-change condition — a finished job returns
        within one round-trip, not a poll interval).  Raises
        :class:`~repro.errors.ServeError` on overall timeout.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            round_s = max(0.0, min(poll_s, remaining))
            try:
                record = self.wait_state(
                    job_id, "terminal", timeout_s=round_s
                )
            except ServeError as error:
                # A transport 504 (slow host, not a slow job) is
                # retryable while the overall deadline allows.
                if (getattr(error, "http_status", None) != 504
                        or time.monotonic() >= deadline):
                    raise
                continue
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout_s:g}s waiting for job "
                    f"{job_id} (last state: {record['state']})",
                    http_status=504,
                )

    def store_get(self, digest: str) -> bytes:
        """``GET /store/<digest>`` — raw stored payload bytes."""
        return self._request("GET", f"/store/{digest}")

    def store_put(self, digest: str, payload: bytes) -> Dict[str, Any]:
        """``PUT /store/<digest>`` — publish payload bytes."""
        request = urllib.request.Request(
            f"{self.url}/store/{digest}", data=payload, method="PUT"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            raise self._to_error(error)
        except urllib.error.URLError as error:
            if isinstance(error.reason, TimeoutError):
                raise ServeError(
                    f"no response from {self.url} within "
                    f"{self.timeout_s:g}s",
                    http_status=504,
                )
            raise ServeError(
                f"cannot reach experiment service at {self.url}: "
                f"{error.reason}",
                http_status=503,
            )
        except TimeoutError:
            raise ServeError(
                f"no response from {self.url} within {self.timeout_s:g}s",
                http_status=504,
            )


def submit_with_backoff(
    client: ServeClient,
    experiment: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    priority: int = 0,
    attempts: int = 4,
    sleep=time.sleep,
) -> Dict[str, Any]:
    """Submit, backing off on retryable fleet conditions.

    Both retryable errors carry a server-chosen ``Retry-After`` hint:
    :class:`~repro.errors.QueueFullError` (the queue is at capacity)
    and :class:`~repro.errors.DegradedError` (the owning shard is down
    and not yet ejected/healed).  Submissions are idempotent by spec
    digest, so resubmitting after either is loss-free by construction.
    The last attempt re-raises.
    """
    if attempts < 1:
        raise ServeError("submit needs at least one attempt")
    for attempt in range(1, attempts + 1):
        try:
            return client.submit(
                experiment, scale=scale, seed=seed, priority=priority
            )
        except (QueueFullError, DegradedError) as error:
            if attempt == attempts:
                raise
            sleep(min(max(error.retry_after_s, 0.05), 30.0))
    raise AssertionError("unreachable")  # pragma: no cover


class ShardedClient:
    """Client-side fleet routing over a consistent-hash ring.

    Submissions are routed to the shard owning the spec's digest —
    identical placement to the router process, so dedup and the result
    store behave the same whichever front end is in use.  Job lookups
    remember which shard accepted which id and fall back to asking
    every shard (a restarted fleet member answers 404 for ids it never
    saw; only the owner answers).
    """

    def __init__(self, shards=None, timeout_s: float = 30.0) -> None:
        from repro.serve.ring import HashRing

        urls = resolve_shards(shards)
        if not urls:
            raise ServeError(
                f"no shards configured; pass a list or set {SHARDS_ENV}"
            )
        self.clients = {
            url: ServeClient(url, timeout_s=timeout_s) for url in urls
        }
        self.ring = HashRing(urls)
        self._job_homes: Dict[str, str] = {}

    # -- placement --------------------------------------------------------

    def shard_for_spec(self, body: Dict[str, Any]) -> str:
        """The shard URL owning a submission body's spec digest."""
        from repro.serve.jobs import normalize_spec, spec_digest

        spec = normalize_spec(
            {k: v for k, v in body.items() if k != "priority"}
        )
        return self.ring.node_for(spec_digest(spec))

    def _home(self, job_id: str) -> ServeClient:
        url = self._job_homes.get(job_id)
        if url is not None:
            return self.clients[url]
        last_error: Optional[ServeError] = None
        for url, client in self.clients.items():
            try:
                client.status(job_id)
            except ServeError as error:
                last_error = error
                continue
            self._job_homes[job_id] = url
            return client
        raise last_error if last_error is not None else ServeError(
            f"unknown job id {job_id!r}", http_status=404
        )

    # -- API (mirrors ServeClient) ----------------------------------------

    def submit(
        self,
        experiment: str,
        scale: float = 1.0,
        seed: Optional[int] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"experiment": experiment, "scale": scale}
        if seed is not None:
            body["seed"] = seed
        url = self.shard_for_spec(body)
        if priority:
            body["priority"] = priority
        out = self._post_to(url, "/jobs", body)
        return out

    def plan(
        self, scale: float = 1.0, seed: Optional[int] = None
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"scale": scale, "experiment": "dse"}
        if seed is not None:
            body["seed"] = seed
        url = self.shard_for_spec(body)
        del body["experiment"]  # the /plan endpoint forbids the key
        return self._post_to(url, "/plan", body)

    def _post_to(
        self, url: str, path: str, body: Dict[str, Any]
    ) -> Dict[str, Any]:
        out = self.clients[url]._json("POST", path, body)
        out["shard"] = url
        self._job_homes[out["job"]["id"]] = url
        return out

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._home(job_id).status(job_id)

    def wait(self, job_id: str, timeout_s: float = 300.0) -> Dict[str, Any]:
        return self._home(job_id).wait(job_id, timeout_s=timeout_s)

    def result_bytes(self, job_id: str) -> bytes:
        return self._home(job_id).result_bytes(job_id)

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(job_id))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._home(job_id).cancel(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Every shard's jobs, tagged with their shard URL."""
        out: List[Dict[str, Any]] = []
        for url, client in self.clients.items():
            for record in client.list_jobs():
                record = dict(record, shard=url)
                out.append(record)
        return out

    def health(self) -> Dict[str, Any]:
        """Fleet health: per-shard records plus an aggregate status."""
        shards: Dict[str, Any] = {}
        status = "ok"
        for url, client in self.clients.items():
            try:
                shards[url] = client.health()
                if shards[url].get("status") != "ok":
                    status = "degraded"
            except ServeError as error:
                shards[url] = {"status": "unreachable", "error": str(error)}
                status = "degraded"
        return {"status": status, "shards": shards,
                "ring": self.ring.describe()}
