"""Durable journal of queued jobs for graceful drain and restart.

On SIGTERM the daemon finishes in-flight jobs but does *not* start the
still-queued ones: it writes them here — one checksummed JSONL line per
job, the exact line format of the cell checkpoint journal
(:func:`repro.sim.checkpoint.journal_line`) — and a restarted daemon
resubmits them with their original ids, priorities and submission
times, so no accepted job is ever lost and clients can keep polling the
ids they were given across the restart.

The journal is written atomically (temp file + ``os.replace`` +
fsync): it always describes one consistent queued set, never a torn
mixture of two drains.  Corrupt lines on load are skipped and counted
(``serve.journal.corrupt``), costing one lost *queued* (never started)
job rather than a wrong result.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.errors import ServeError
from repro.obs import metrics as _metrics
from repro.serve.jobs import Job
from repro.sim.checkpoint import journal_line, parse_journal_line

#: Journal file name inside the service state directory.
JOB_JOURNAL_NAME = "serve-jobs.jsonl"

#: Journal record schema (bump on incompatible layout changes).
JOB_JOURNAL_SCHEMA = 1


class JobJournal:
    """Atomic whole-file journal of the queued-job set."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOB_JOURNAL_NAME
        self.skipped_corrupt = 0

    def write_jobs(self, jobs: Iterable[Job]) -> int:
        """Journal the given jobs, replacing any previous journal.

        Returns the number journaled.  The write is atomic and fsync'd;
        on any OS failure a :class:`~repro.errors.ServeError` is raised
        and the previous journal (if any) is left intact.
        """
        records = [
            {
                "schema": JOB_JOURNAL_SCHEMA,
                "id": job.id,
                "spec": job.spec.as_dict(),
                "digest": job.digest,
                "priority": job.priority,
                "submitted_unix": job.submitted_unix,
            }
            for job in jobs
        ]
        text = "".join(journal_line(record) + "\n" for record in records)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp", prefix="serve-jobs."
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except OSError as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise ServeError(
                f"cannot journal queued jobs to {self.path}: {error}",
                http_status=500,
            )
        _metrics.counter_add("serve.drain.journaled", len(records))
        return len(records)

    def load(self) -> List[Dict[str, Any]]:
        """Read journaled job records (corrupt lines skipped, counted)."""
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return []
        except OSError as error:
            raise ServeError(
                f"unreadable job journal {self.path}: {error}",
                http_status=500,
            )
        records: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = parse_journal_line(line)
                if payload.get("schema") != JOB_JOURNAL_SCHEMA:
                    raise ValueError("unknown job journal schema")
                payload["id"], payload["spec"]["experiment"]
            except (ValueError, KeyError, TypeError):
                self.skipped_corrupt += 1
                _metrics.counter_add("serve.journal.corrupt")
                continue
            records.append(payload)
        return records

    def clear(self) -> None:
        """Remove the journal (after its jobs were restored)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise ServeError(
                f"cannot clear job journal {self.path}: {error}",
                http_status=500,
            )
