"""Job model for the experiment service: specs, digests, lifecycle.

A *job spec* is the small, canonical description of one experiment run
— experiment id, trace scale, seed.  Two requests with the same spec
are the same computation: :func:`spec_digest` fingerprints the spec
(via :func:`repro.obs.manifest.config_digest`, the digest the run
manifests already use, plus the replay-semantics
:data:`~repro.sim.replay_cache.CACHE_VERSION`), and the queue
deduplicates on that digest.

A :class:`Job` tracks one accepted spec through its lifecycle::

    QUEUED -> RUNNING -> DONE | FAILED
       \\-> CANCELLED

The result of a DONE job is held as canonical JSON *bytes*
(:func:`execute_spec` serialises exactly once), so every caller that
polls the job — including submitters coalesced onto it by dedup —
receives a byte-identical payload.
"""

from __future__ import annotations

import enum
import itertools
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServeError
from repro.obs.manifest import config_digest

#: Spec keys a submission may carry (anything else is rejected with a
#: did-you-mean suggestion).
SPEC_KEYS = ("experiment", "scale", "seed", "priority")

#: Result payload schema (bump on incompatible layout changes).
RESULT_SCHEMA = 1

#: Priority tier for planner jobs submitted via ``POST /plan``.  User
#: submissions clamp to [-1000, 1000]; plan jobs ride above that band
#: so a cheap surrogate-guided sweep never queues behind a full run.
PLAN_PRIORITY = 2000


@dataclass(frozen=True)
class JobSpec:
    """Canonical description of one experiment computation."""

    experiment: str
    scale: float = 1.0
    seed: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (also the digest input)."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
        }


def normalize_spec(mapping: Mapping[str, Any]) -> JobSpec:
    """Validate a request body into a :class:`JobSpec`.

    The service's input boundary: unknown keys, unknown experiment ids
    and out-of-range numbers are rejected with structured
    :class:`~repro.errors.ServeError`\\ s carrying did-you-mean
    suggestions (:mod:`repro.validate.schema`), before anything touches
    the queue.
    """
    from repro.experiments.runner import ALL_EXPERIMENTS
    from repro.validate.schema import (
        coerce_number,
        unknown_key_message,
        validate_keys,
    )

    if not isinstance(mapping, Mapping):
        raise ServeError("job spec must be a JSON object")
    validate_keys(mapping.keys(), SPEC_KEYS, kind="job spec key",
                  error=ServeError)
    experiment = mapping.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ServeError("job spec needs an 'experiment' name")
    if experiment not in ALL_EXPERIMENTS:
        raise ServeError(
            unknown_key_message(
                "experiment", experiment, list(ALL_EXPERIMENTS)
            )
        )
    scale = coerce_number(
        "scale", mapping.get("scale", 1.0), lo=1e-6, hi=1.0, error=ServeError
    )
    seed = mapping.get("seed")
    if seed is not None:
        seed = int(coerce_number("seed", seed, lo=0, integer=True,
                                 error=ServeError))
    return JobSpec(experiment=experiment, scale=float(scale), seed=seed)


def spec_digest(spec: JobSpec) -> str:
    """Stable identity of a spec's computation.

    Includes :data:`~repro.sim.replay_cache.CACHE_VERSION` so digests
    expire together with cached replays and cell checkpoints — the same
    invalidation rule the rest of the persistence stack follows.
    """
    from repro.sim.replay_cache import CACHE_VERSION

    settings = dict(spec.as_dict(), cache_version=CACHE_VERSION)
    return config_digest(settings)


class JobState(enum.Enum):
    """Lifecycle of an accepted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job will never change state again."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


_job_counter = itertools.count(1)
_job_counter_lock = threading.Lock()


def _next_job_id() -> str:
    """A process-unique job id with a random component.

    The random prefix keeps ids unique across daemon restarts — a
    restored journal may carry ids minted by an earlier process, and a
    client must never see one id name two different jobs.
    """
    import uuid

    with _job_counter_lock:
        seq = next(_job_counter)
    return f"job-{uuid.uuid4().hex[:8]}-{seq:04d}"


class Job:
    """One accepted computation and its lifecycle state.

    Thread-safety: state transitions happen under the owning queue's
    lock; readers use :meth:`describe` (which snapshots consistent
    fields) and :meth:`wait` (an event, set exactly once on reaching a
    terminal state).
    """

    def __init__(
        self, spec: JobSpec, digest: str, priority: int = 0,
        job_id: Optional[str] = None,
    ) -> None:
        self.id = job_id if job_id is not None else _next_job_id()
        self.spec = spec
        self.digest = digest
        self.priority = priority
        self.state = JobState.QUEUED
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.error: Optional[str] = None
        self.error_code: Optional[str] = None
        #: Canonical result payload bytes (DONE jobs only).
        self.result_bytes: Optional[bytes] = None
        self.submissions = 1
        self._done = threading.Event()

    # -- transitions (call under the queue lock) --------------------------

    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_unix = time.time()

    def mark_done(self, result_bytes: bytes) -> None:
        self.result_bytes = result_bytes
        self.state = JobState.DONE
        self.finished_unix = time.time()
        self._done.set()

    def mark_failed(self, error: Exception) -> None:
        self.error = str(error)
        self.error_code = getattr(error, "code", type(error).__name__)
        self.state = JobState.FAILED
        self.finished_unix = time.time()
        self._done.set()

    def mark_cancelled(self) -> None:
        self.state = JobState.CANCELLED
        self.finished_unix = time.time()
        self._done.set()

    # -- inspection -------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready status record (what ``GET /jobs/<id>`` returns)."""
        return {
            "id": self.id,
            "digest": self.digest,
            "state": self.state.value,
            "spec": self.spec.as_dict(),
            "priority": self.priority,
            "submissions": self.submissions,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "error_code": self.error_code,
        }


def execute_spec(
    spec: JobSpec, state_dir: Optional[str] = None
) -> bytes:
    """Run one spec through the experiment engine; returns payload bytes.

    The computation goes through the same
    :class:`~repro.experiments.common.ExperimentContext` +
    :func:`~repro.experiments.runner.run_experiment` path as
    ``repro-experiments``, so a served result renders identically to a
    CLI run of the same spec.  When ``state_dir`` is given the run is
    checkpointed per cell (``state_dir/cells/<digest>/``,
    :mod:`repro.sim.checkpoint`), so a crashed or re-submitted job
    resumes instead of recomputing — on top of the replay cache, which
    already shares replay work across jobs and processes.

    The payload is serialised to canonical JSON exactly once; callers
    store and return the bytes untouched so duplicate submitters receive
    byte-identical responses.
    """
    from pathlib import Path

    from repro.experiments.common import ExperimentContext
    from repro.experiments.runner import run_experiment
    from repro.sim.checkpoint import CheckpointJournal
    from repro.workloads.generators import DEFAULT_SEED

    digest = spec_digest(spec)
    seed = DEFAULT_SEED if spec.seed is None else spec.seed
    checkpoint = None
    if state_dir is not None:
        checkpoint = CheckpointJournal(Path(state_dir) / "cells" / digest)
    try:
        context = ExperimentContext(
            scale=spec.scale, seed=seed, checkpoint=checkpoint
        )
        title, render, _ = run_experiment(spec.experiment, context)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    payload = {
        "schema": RESULT_SCHEMA,
        "experiment": spec.experiment,
        "title": title,
        "scale": spec.scale,
        "seed": seed,
        "digest": digest,
        "render": render,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
