"""Multiplexed fleet front end: one event loop routing to N shards.

The :class:`ShardRouter` is the process clients talk to when the serve
fleet has more than one shard.  It terminates client HTTP on a single
:mod:`asyncio` event loop — a parked long-poll client costs one socket
and a coroutine frame, not a thread, so thousands of concurrent
waiters multiplex onto the loop — and forwards each request to the
shard chosen by the consistent-hash :class:`~repro.serve.ring.HashRing`
over :func:`~repro.serve.jobs.spec_digest`.

Because the ring keys on the *same* digest the per-shard queue dedups
on and the shared :class:`~repro.serve.store.ResultStore` is keyed by,
placement composes with in-shard dedup into fleet-wide dedup, and a
routed ``/jobs/<id>/result`` response is proxied byte-for-byte — the
byte-identity contract survives the extra hop (pinned by
``tests/serve/test_identity.py``).

Routing rules::

    POST /jobs, /plan      by spec digest -> owning shard
    GET/PUT /store/<d>     by digest -> owning shard
    GET  /jobs/<id>[...]   by remembered id->shard home, else asking
                           every shard (only the owner knows the id)
    GET  /jobs             fan-out, concatenated, shard-tagged
    GET  /healthz          fan-out, aggregated fleet view
    GET  /metrics          every shard's snapshot folded together via
                           MetricsRegistry.merge_snapshot, plus the
                           router's own serve.router.* / serve.shard.*
                           counters

Long-poll rounds (``GET /jobs/<id>?wait=...``) are *coalesced*: any
number of clients waiting on the same job/target share one upstream
long-poll connection, so a popular job costs the shard one parked
handler regardless of fan-in (``serve.router.wait_coalesced`` counts
the sharing).

An unreachable shard renders as 502 in the ``error[<code>]`` contract;
the router itself holds no job state worth preserving, so it has no
journal — restart it freely, the shards are the truth.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServeError, render_error
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import normalize_spec, spec_digest
from repro.serve.ring import HashRing
from repro.serve.server import LONG_POLL_MAX_S

#: Upstream connect/read timeout for ordinary (non-long-poll) proxying.
UPSTREAM_TIMEOUT_S = 30.0

#: Cap on a client request body the router will buffer.
_MAX_BODY = 8 * 1024 * 1024


def _error_body(error: ReproError) -> Tuple[int, bytes]:
    payload = {"error": render_error(error), "code": error.code}
    return (
        getattr(error, "http_status", 400),
        json.dumps(payload, sort_keys=True).encode(),
    )


class _Response:
    """One upstream or router-originated HTTP response to relay."""

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}


class ShardRouter:
    """Asyncio front end multiplexing a fleet of serve shards."""

    def __init__(
        self,
        shards: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        urls = [url.strip().rstrip("/") for url in shards if url.strip()]
        if not urls:
            raise ServeError("router needs at least one shard URL")
        self.shards: Tuple[str, ...] = tuple(urls)
        self.ring = HashRing(self.shards, replicas=replicas)
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricsRegistry()
        self._shard_index = {url: i for i, url in enumerate(self.shards)}
        self._job_homes: Dict[str, str] = {}
        self._waits: Dict[Tuple[str, str], asyncio.Task] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._drain_requested = threading.Event()
        self._bound: Optional[Tuple[str, int]] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._bound if self._bound else (self.host, self.port)
        return f"http://{host}:{port}"

    def start(self) -> "ShardRouter":
        """Run the event loop (and listener) in a daemon thread."""
        if self._thread is not None:
            raise ServeError("router already started", http_status=500)
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ServeError("router failed to start within 10s",
                             http_status=500)
        return self

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._stop_event = asyncio.Event()
        self._started.set()
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        """Shut the listener and loop down (idempotent)."""
        self._drain_requested.set()
        if self._loop is None:
            return
        loop, thread = self._loop, self._thread

        def _signal() -> None:
            self._stop_event.set()

        try:
            loop.call_soon_threadsafe(_signal)
        except RuntimeError:
            pass  # loop already closed
        if thread is not None:
            thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a stop request (main thread only)."""
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self._drain_requested.set())

    def serve_until_drained(self, stream=None) -> Dict[str, Any]:
        """CLI main loop: start, announce, wait for SIGTERM, stop."""
        import sys

        if stream is None:
            stream = sys.stdout
        self.install_signal_handlers()
        self.start()
        stream.write(
            f"repro-serve-router listening on {self.url} "
            f"({len(self.shards)} shards)\n"
        )
        stream.flush()
        while not self._drain_requested.wait(timeout=60.0):
            pass
        self.stop()
        snapshot = self.registry.snapshot()
        routed = snapshot.get("counters", {}).get("serve.router.requests", 0)
        stream.write(f"router stopped after {int(routed)} requests\n")
        stream.flush()
        return {"requests": int(routed)}

    # -- client side of the wire ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            self.registry.counter_add("serve.router.requests")
            try:
                response = await self._dispatch(method, path, body)
            except ReproError as error:
                status, payload = _error_body(error)
                response = _Response(status, payload)
            except Exception as error:  # never leak a traceback
                status, payload = _error_body(
                    ServeError(f"router internal error: {error}",
                               http_status=500)
                )
                response = _Response(status, payload)
            await self._write_response(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line.strip():
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        length = 0
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > _MAX_BODY:
            return method, target, b""
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: _Response
    ) -> None:
        head = (
            f"HTTP/1.1 {response.status} X\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            "Connection: close\r\n"
        )
        for name, value in response.headers.items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()

    # -- upstream side of the wire ----------------------------------------

    async def _upstream(
        self,
        shard: str,
        method: str,
        path: str,
        body: bytes = b"",
        timeout_s: float = UPSTREAM_TIMEOUT_S,
        content_type: str = "application/json",
    ) -> _Response:
        """One request to one shard over a fresh asyncio connection."""
        host, _, port = shard.rpartition("://")[2].partition(":")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, int(port or 80)),
                timeout=timeout_s,
            )
        except (OSError, asyncio.TimeoutError) as error:
            self._count_shard(shard, "unreachable")
            raise ServeError(
                f"shard {shard} unreachable: {error}", http_status=502
            )
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            return await asyncio.wait_for(
                self._read_upstream_response(reader), timeout=timeout_s
            )
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as error:
            self._count_shard(shard, "errors")
            raise ServeError(
                f"shard {shard} failed mid-request: {error}", http_status=502
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_upstream_response(
        self, reader: asyncio.StreamReader
    ) -> _Response:
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1]) if len(parts) >= 2 else 502
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
        extra = {}
        if "retry-after" in headers:
            extra["Retry-After"] = headers["retry-after"]
        return _Response(
            status, body,
            content_type=headers.get("content-type", "application/json"),
            headers=extra,
        )

    def _count_shard(self, shard: str, what: str) -> None:
        index = self._shard_index.get(shard)
        if index is not None:
            self.registry.counter_add(f"serve.shard.{index}.{what}")
        self.registry.counter_add(f"serve.router.shard_{what}")

    # -- routing ----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> _Response:
        path, _, query_string = target.partition("?")
        path = path.rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if method == "GET" and path == "/healthz":
            return await self._health()
        if method == "GET" and path == "/metrics":
            return await self._metrics()
        if method == "POST" and path in ("/jobs", "/plan"):
            return await self._route_submission(path, body)
        if method == "GET" and path == "/jobs":
            return await self._list_jobs()
        if len(parts) == 2 and parts[0] == "store":
            shard = self.ring.node_for(parts[1])
            self._count_shard(shard, "routed")
            return await self._upstream(
                shard, method, f"/store/{parts[1]}", body,
                content_type="application/octet-stream",
            )
        if len(parts) >= 2 and parts[0] == "jobs":
            return await self._route_job(
                method, parts, query_string, body
            )
        raise ServeError(
            f"unknown endpoint {method} {path}", http_status=404
        )

    async def _route_submission(self, path: str, body: bytes) -> _Response:
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        spec_mapping = dict(payload)
        if path == "/plan":
            spec_mapping["experiment"] = "dse"
        spec_mapping.pop("priority", None)
        digest = spec_digest(normalize_spec(spec_mapping))
        shard = self.ring.node_for(digest)
        self._count_shard(shard, "routed")
        response = await self._upstream(shard, "POST", path, body)
        if response.status == 202:
            try:
                job_id = json.loads(response.body)["job"]["id"]
                self._job_homes[job_id] = shard
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
        return response

    async def _route_job(
        self,
        method: str,
        parts: List[str],
        query_string: str,
        body: bytes,
    ) -> _Response:
        job_id = parts[1]
        sub = "/".join(parts[2:])
        path = f"/jobs/{job_id}" + (f"/{sub}" if sub else "")
        if query_string:
            path += f"?{query_string}"
        shard = self._job_homes.get(job_id)
        if shard is None:
            shard = await self._find_home(job_id)
        is_wait = method == "GET" and not sub and "wait=" in query_string
        if is_wait:
            return await self._coalesced_wait(shard, path)
        timeout = UPSTREAM_TIMEOUT_S
        return await self._upstream(shard, method, path, body,
                                    timeout_s=timeout)

    async def _find_home(self, job_id: str) -> str:
        """Ask every shard who owns an id the router has not seen.

        Needed after a router restart (the id->home map is in-memory
        only) and for ids submitted directly to a shard.
        """
        results = await asyncio.gather(
            *(
                self._upstream(url, "GET", f"/jobs/{job_id}")
                for url in self.shards
            ),
            return_exceptions=True,
        )
        for url, result in zip(self.shards, results):
            if isinstance(result, _Response) and result.status == 200:
                self._job_homes[job_id] = url
                return url
        raise ServeError(
            f"unknown job id {job_id!r} on any shard", http_status=404
        )

    async def _coalesced_wait(self, shard: str, path: str) -> _Response:
        """Share one upstream long-poll among identical waiters."""
        key = (shard, path)
        task = self._waits.get(key)
        if task is None:
            task = asyncio.ensure_future(
                self._upstream(
                    shard, "GET", path,
                    timeout_s=LONG_POLL_MAX_S + UPSTREAM_TIMEOUT_S,
                )
            )
            self._waits[key] = task
            task.add_done_callback(lambda _t: self._waits.pop(key, None))
        else:
            self.registry.counter_add("serve.router.wait_coalesced")
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            raise
        except ServeError:
            raise
        except Exception as error:
            raise ServeError(f"long-poll failed: {error}", http_status=502)

    # -- fan-out endpoints -------------------------------------------------

    async def _each_shard(self, path: str) -> List[Tuple[str, Any]]:
        """(shard, parsed JSON | ServeError) for a GET on every shard."""
        responses = await asyncio.gather(
            *(self._upstream(url, "GET", path) for url in self.shards),
            return_exceptions=True,
        )
        out: List[Tuple[str, Any]] = []
        for url, response in zip(self.shards, responses):
            if isinstance(response, _Response):
                try:
                    out.append((url, json.loads(response.body)))
                except json.JSONDecodeError:
                    out.append(
                        (url, ServeError(f"shard {url} sent bad JSON"))
                    )
            elif isinstance(response, ServeError):
                out.append((url, response))
            else:
                out.append((url, ServeError(str(response))))
        return out

    async def _health(self) -> _Response:
        shards: Dict[str, Any] = {}
        status = "ok"
        for url, payload in await self._each_shard("/healthz"):
            if isinstance(payload, ServeError):
                shards[url] = {"status": "unreachable",
                               "error": str(payload)}
                status = "degraded"
            else:
                shards[url] = payload
                if payload.get("status") != "ok":
                    status = "degraded"
        body = json.dumps(
            {
                "status": status,
                "role": "router",
                "shards": shards,
                "ring": self.ring.describe(),
            },
            sort_keys=True,
        ).encode()
        return _Response(200, body)

    async def _metrics(self) -> _Response:
        scratch = MetricsRegistry()
        scratch.merge_snapshot(self.registry.snapshot())
        for url, payload in await self._each_shard("/metrics"):
            index = self._shard_index[url]
            if isinstance(payload, ServeError):
                scratch.gauge_set(f"serve.shard.{index}.up", 0)
                continue
            scratch.gauge_set(f"serve.shard.{index}.up", 1)
            for name, value in payload.get("counters", {}).items():
                if name.startswith("serve.jobs."):
                    scratch.counter_add(
                        f"serve.shard.{index}.{name[len('serve.'):]}",
                        value,
                    )
            scratch.merge_snapshot(payload)
        body = json.dumps(scratch.snapshot(), sort_keys=True).encode()
        return _Response(200, body)

    async def _list_jobs(self) -> _Response:
        jobs: List[Dict[str, Any]] = []
        for url, payload in await self._each_shard("/jobs"):
            if isinstance(payload, ServeError):
                continue
            for record in payload.get("jobs", []):
                jobs.append(dict(record, shard=url))
        jobs.sort(key=lambda r: r.get("submitted_unix", 0), reverse=True)
        body = json.dumps({"jobs": jobs}, sort_keys=True).encode()
        return _Response(200, body)
