"""Multiplexed fleet front end: one event loop routing to N shards.

The :class:`ShardRouter` is the process clients talk to when the serve
fleet has more than one shard.  It terminates client HTTP on a single
:mod:`asyncio` event loop — a parked long-poll client costs one socket
and a coroutine frame, not a thread, so thousands of concurrent
waiters multiplex onto the loop — and forwards each request to the
shard chosen by the consistent-hash
:class:`~repro.serve.ring.VersionedRing` over
:func:`~repro.serve.jobs.spec_digest`.

Because the ring keys on the *same* digest the per-shard queue dedups
on and the shared :class:`~repro.serve.store.ResultStore` is keyed by,
placement composes with in-shard dedup into fleet-wide dedup, and a
routed ``/jobs/<id>/result`` response is proxied byte-for-byte — the
byte-identity contract survives the extra hop (pinned by
``tests/serve/test_identity.py``).

Routing rules::

    POST /jobs, /plan      by spec digest -> owning shard
    GET/PUT /store/<d>     by digest -> owning shard
    GET  /jobs/<id>[...]   by remembered id->shard home, else asking
                           every shard (only the owner knows the id)
    GET  /jobs             fan-out, concatenated, shard-tagged
    GET  /healthz          fan-out, aggregated fleet view
    GET  /ring             membership, ring version, per-shard health,
                           store occupancy (live-probed)
    POST /ring/join        {"url": ...} — add a shard to the live ring
    POST /ring/leave       {"url": ...} — remove a shard from the ring
    GET  /metrics          every shard's snapshot folded together via
                           MetricsRegistry.merge_snapshot, plus the
                           router's own serve.router.* / serve.shard.*
                           counters

Long-poll rounds (``GET /jobs/<id>?wait=...``) are *coalesced*: any
number of clients waiting on the same job/target share one upstream
long-poll connection, so a popular job costs the shard one parked
handler regardless of fan-in (``serve.router.wait_coalesced`` counts
the sharing).

Failure model
-------------

Membership is *dynamic*: the router tracks a versioned ring plus a
per-shard health record, heartbeats every member's ``/healthz`` on a
configurable period (``REPRO_SERVE_HEARTBEAT_S``), and after
``REPRO_SERVE_EJECT_AFTER`` consecutive failures ejects the dead
shard — its arcs remap minimally onto the survivors, and the shared
content-addressed store means remapped digests that already completed
are served from the store instead of recomputed.  A recovered (or
supervisor-restarted) shard rejoins automatically on its first
successful heartbeat.

While a segment is uncovered — the owning shard is down but not yet
ejected, or a job's home died with the job's id — the router never
returns a silent 502: it either serves result bytes from the shared
store (``serve.router.store_served``) or raises the structured,
retryable :class:`~repro.errors.DegradedError` (HTTP 503 +
``Retry-After``), which ``repro-cli submit`` and the load harness back
off on.  The router itself holds no job state worth preserving, so it
has no journal — restart it freely, the shards are the truth.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DegradedError, ReproError, ServeError, render_error
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import normalize_spec, spec_digest
from repro.serve.ring import VersionedRing
from repro.serve.server import LONG_POLL_MAX_S

#: Upstream connect/read timeout for ordinary (non-long-poll) proxying.
UPSTREAM_TIMEOUT_S = 30.0

#: Cap on a client request body the router will buffer.
_MAX_BODY = 8 * 1024 * 1024

#: Environment variable for the heartbeat period in seconds (0
#: disables the monitor; failures are then only noticed by traffic).
HEARTBEAT_S_ENV = "REPRO_SERVE_HEARTBEAT_S"

#: Environment variable for one heartbeat probe's timeout in seconds.
HEARTBEAT_TIMEOUT_ENV = "REPRO_SERVE_HEARTBEAT_TIMEOUT_S"

#: Environment variable for the consecutive-failure ejection threshold.
EJECT_AFTER_ENV = "REPRO_SERVE_EJECT_AFTER"

DEFAULT_HEARTBEAT_S = 2.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 1.0
DEFAULT_EJECT_AFTER = 3


def _env_number(name: str, default, minimum, integer: bool = False):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw) if integer else float(raw)
    except ValueError:
        raise ServeError(f"{name} must be a number, got {raw!r}")
    if value < minimum:
        raise ServeError(f"{name} must be >= {minimum:g}, got {raw}")
    return value


def resolve_heartbeat(
    heartbeat_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
    eject_after: Optional[int] = None,
) -> Tuple[float, float, int]:
    """Failure-detection knobs: explicit argument > environment > default."""
    if heartbeat_s is None:
        heartbeat_s = _env_number(HEARTBEAT_S_ENV, DEFAULT_HEARTBEAT_S, 0.0)
    if timeout_s is None:
        timeout_s = _env_number(
            HEARTBEAT_TIMEOUT_ENV, DEFAULT_HEARTBEAT_TIMEOUT_S, 0.05
        )
    if eject_after is None:
        eject_after = _env_number(
            EJECT_AFTER_ENV, DEFAULT_EJECT_AFTER, 1, integer=True
        )
    return float(heartbeat_s), float(timeout_s), int(eject_after)


def _error_response(error: ReproError) -> "_Response":
    payload = {"error": render_error(error), "code": error.code}
    headers: Dict[str, str] = {}
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        headers["Retry-After"] = f"{retry_after:g}"
    return _Response(
        getattr(error, "http_status", 400),
        json.dumps(payload, sort_keys=True).encode(),
        headers=headers,
    )


class _Response:
    """One upstream or router-originated HTTP response to relay."""

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}


class _Member:
    """One shard's membership + health record inside the router."""

    def __init__(self, url: str, index: int) -> None:
        self.url = url
        self.index = index
        self.state = "up"  # up | suspect | down
        self.in_ring = True
        self.consecutive_failures = 0
        self.last_ok_unix: Optional[float] = None
        self.last_error: Optional[str] = None
        #: Last successful ``/healthz`` payload (store occupancy lives
        #: here — the shard reports its store stats in its health).
        self.health: Optional[Dict[str, Any]] = None

    def describe(self) -> Dict[str, Any]:
        store = None
        if isinstance(self.health, dict):
            store = self.health.get("store")
        return {
            "index": self.index,
            "state": self.state,
            "in_ring": self.in_ring,
            "consecutive_failures": self.consecutive_failures,
            "last_ok_unix": self.last_ok_unix,
            "last_error": self.last_error,
            "store": store,
        }


class ShardRouter:
    """Asyncio front end multiplexing a fleet of serve shards."""

    def __init__(
        self,
        shards: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        heartbeat_s: Optional[float] = None,
        heartbeat_timeout_s: Optional[float] = None,
        eject_after: Optional[int] = None,
    ) -> None:
        urls = [url.strip().rstrip("/") for url in shards if url.strip()]
        if not urls:
            raise ServeError("router needs at least one shard URL")
        self._ring = VersionedRing(urls, replicas=replicas)
        self._members: Dict[str, _Member] = {
            url: _Member(url, index) for index, url in enumerate(urls)
        }
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else MetricsRegistry()
        (self.heartbeat_s, self.heartbeat_timeout_s,
         self.eject_after) = resolve_heartbeat(
            heartbeat_s, heartbeat_timeout_s, eject_after
        )
        self._job_homes: Dict[str, str] = {}
        self._job_digests: Dict[str, str] = {}
        self._waits: Dict[Tuple[str, str], asyncio.Task] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._drain_requested = threading.Event()
        self._bound: Optional[Tuple[str, int]] = None

    # -- membership views --------------------------------------------------

    @property
    def ring(self) -> VersionedRing:
        """The current versioned ring (immutable snapshot)."""
        return self._ring

    @property
    def ring_version(self) -> int:
        return self._ring.version

    @property
    def shards(self) -> Tuple[str, ...]:
        """Every known member URL (ring members first, then ejected)."""
        return tuple(
            sorted(self._members, key=lambda u: self._members[u].index)
        )

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._bound if self._bound else (self.host, self.port)
        return f"http://{host}:{port}"

    def start(self) -> "ShardRouter":
        """Run the event loop (and listener) in a daemon thread."""
        if self._thread is not None:
            raise ServeError("router already started", http_status=500)
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ServeError("router failed to start within 10s",
                             http_status=500)
        return self

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._stop_event = asyncio.Event()
        self.registry.gauge_set("serve.router.ring_version",
                                self._ring.version)
        monitor: Optional[asyncio.Task] = None
        if self.heartbeat_s > 0:
            monitor = asyncio.ensure_future(self._monitor())
        self._started.set()
        await self._stop_event.wait()
        if monitor is not None:
            monitor.cancel()
            await asyncio.gather(monitor, return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        """Shut the listener and loop down (idempotent)."""
        self._drain_requested.set()
        if self._loop is None:
            return
        loop, thread = self._loop, self._thread

        def _signal() -> None:
            self._stop_event.set()

        try:
            loop.call_soon_threadsafe(_signal)
        except RuntimeError:
            pass  # loop already closed
        if thread is not None:
            thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a stop request (main thread only)."""
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self._drain_requested.set())

    def serve_until_drained(self, stream=None) -> Dict[str, Any]:
        """CLI main loop: start, announce, wait for SIGTERM, stop."""
        import sys

        if stream is None:
            stream = sys.stdout
        self.install_signal_handlers()
        self.start()
        stream.write(
            f"repro-serve-router listening on {self.url} "
            f"({len(self.shards)} shards)\n"
        )
        stream.flush()
        while not self._drain_requested.wait(timeout=60.0):
            pass
        self.stop()
        snapshot = self.registry.snapshot()
        routed = snapshot.get("counters", {}).get("serve.router.requests", 0)
        stream.write(f"router stopped after {int(routed)} requests\n")
        stream.flush()
        return {"requests": int(routed)}

    # -- dynamic membership (thread-safe entry points) ---------------------

    def _on_loop(self, coroutine, timeout_s: float = 10.0):
        """Run a coroutine on the router loop from any thread."""
        if self._loop is None:
            raise ServeError("router is not running", http_status=500)
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout_s)

    def add_shard(self, url: str) -> Dict[str, Any]:
        """Join a shard to the live ring (idempotent); returns /ring."""
        return self._on_loop(self._membership("join", url))

    def remove_shard(self, url: str, forget: bool = False) -> Dict[str, Any]:
        """Remove a shard from the live ring; ``forget`` also drops its
        membership record (no heartbeat re-probe, no auto-rejoin)."""
        return self._on_loop(self._membership("leave", url, forget=forget))

    def ring_info(self, probe: bool = True) -> Dict[str, Any]:
        """The /ring payload, optionally live-probing member health."""
        return self._on_loop(self._ring_payload(probe=probe))

    async def _membership(
        self, action: str, url: str, forget: bool = False
    ) -> Dict[str, Any]:
        url = (url or "").strip().rstrip("/")
        if not url:
            raise ServeError("membership change needs a shard 'url'")
        if action == "join":
            self._apply_join(url, reason="joined")
        else:
            if url not in self._members:
                raise ServeError(
                    f"shard {url} is not a fleet member", http_status=404
                )
            self._apply_leave(url, reason="left", forget=forget)
        return await self._ring_payload(probe=False)

    def _apply_join(self, url: str, reason: str) -> None:
        member = self._members.get(url)
        if member is None:
            index = 1 + max(
                (m.index for m in self._members.values()), default=-1
            )
            member = _Member(url, index)
            self._members[url] = member
        if url in self._ring:
            member.in_ring = True
            return  # idempotent join
        self._ring = self._ring.join(url)
        member.in_ring = True
        self._note_membership_change(reason)

    def _apply_leave(self, url: str, reason: str, forget: bool = False) -> None:
        member = self._members.get(url)
        if url in self._ring:
            self._ring = self._ring.leave(url)  # raises on the last node
            self._note_membership_change(reason)
        if member is not None:
            member.in_ring = False
        if forget:
            self._members.pop(url, None)
            # Only forgetting drops id routing state: an ejected-but-
            # remembered shard may come back and still owns its ids.
            for job_id, home in list(self._job_homes.items()):
                if home == url:
                    del self._job_homes[job_id]

    def _note_membership_change(self, reason: str) -> None:
        self.registry.counter_add(f"serve.router.{reason}")
        self.registry.counter_add("serve.router.membership_changes")
        self.registry.gauge_set("serve.router.ring_version",
                                self._ring.version)

    # -- failure detection -------------------------------------------------

    async def _monitor(self) -> None:
        """Heartbeat every member's /healthz; eject after repeated
        failures, rejoin on recovery."""
        while True:
            await asyncio.sleep(self.heartbeat_s)
            await self._probe_members()

    async def _probe_members(self) -> None:
        members = list(self._members.values())
        await asyncio.gather(
            *(self._probe(member) for member in members),
            return_exceptions=True,
        )

    async def _probe(self, member: _Member) -> None:
        try:
            response = await self._upstream(
                member.url, "GET", "/healthz",
                timeout_s=self.heartbeat_timeout_s, note=False,
            )
        except ServeError as error:
            self.registry.counter_add("serve.router.heartbeat_failed")
            self._note_failure(member.url, str(error))
            return
        if response.status != 200:
            self.registry.counter_add("serve.router.heartbeat_failed")
            self._note_failure(
                member.url, f"healthz returned {response.status}"
            )
            return
        try:
            payload = json.loads(response.body)
        except json.JSONDecodeError:
            payload = None
        self._note_ok(member.url, payload)

    def _note_ok(self, url: str, payload: Optional[Dict[str, Any]]) -> None:
        member = self._members.get(url)
        if member is None:
            return
        member.consecutive_failures = 0
        member.state = "up"
        member.last_ok_unix = time.time()
        member.last_error = None
        if isinstance(payload, dict):
            member.health = payload
        if not member.in_ring:
            self._apply_join(url, reason="rejoined")

    def _note_failure(self, url: str, error: str) -> None:
        member = self._members.get(url)
        if member is None:
            return
        member.consecutive_failures += 1
        member.last_error = error
        member.state = "suspect" if member.in_ring else "down"
        if (member.in_ring
                and member.consecutive_failures >= self.eject_after):
            if len(self._ring) > 1:
                self._apply_leave(url, reason="ejected")
            # The last shard is never ejected: an empty ring routes
            # nothing, while a kept-but-down shard degrades loudly.
            member.state = "down"

    # -- client side of the wire ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            self.registry.counter_add("serve.router.requests")
            try:
                response = await self._dispatch(method, path, body)
            except ReproError as error:
                response = _error_response(error)
            except Exception as error:  # never leak a traceback
                response = _error_response(
                    ServeError(f"router internal error: {error}",
                               http_status=500)
                )
            await self._write_response(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line.strip():
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        length = 0
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > _MAX_BODY:
            return method, target, b""
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: _Response
    ) -> None:
        head = (
            f"HTTP/1.1 {response.status} X\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            "Connection: close\r\n"
        )
        for name, value in response.headers.items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()

    # -- upstream side of the wire ----------------------------------------

    async def _upstream(
        self,
        shard: str,
        method: str,
        path: str,
        body: bytes = b"",
        timeout_s: float = UPSTREAM_TIMEOUT_S,
        content_type: str = "application/json",
        note: bool = True,
    ) -> _Response:
        """One request to one shard over a fresh asyncio connection.

        ``note`` feeds connection failures into the shard's health
        record (real traffic accelerates failure detection); heartbeat
        probes pass ``note=False`` and account for themselves.
        """
        host, _, port = shard.rpartition("://")[2].partition(":")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, int(port or 80)),
                timeout=timeout_s,
            )
        except (OSError, asyncio.TimeoutError) as error:
            if note:
                self._count_shard(shard, "unreachable")
                self._note_failure(shard, f"unreachable: {error}")
            raise DegradedError(
                f"shard {shard} unreachable: {error}; the fleet is "
                "degraded until the shard is ejected or restarted",
                retry_after_s=max(1.0, self.heartbeat_s),
            )
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            return await asyncio.wait_for(
                self._read_upstream_response(reader), timeout=timeout_s
            )
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as error:
            if note:
                self._count_shard(shard, "errors")
                self._note_failure(shard, f"failed mid-request: {error}")
            raise DegradedError(
                f"shard {shard} failed mid-request: {error}; safe to "
                "retry — submissions are idempotent by spec digest",
                retry_after_s=max(1.0, self.heartbeat_s),
            )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_upstream_response(
        self, reader: asyncio.StreamReader
    ) -> _Response:
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1]) if len(parts) >= 2 else 502
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
        extra = {}
        if "retry-after" in headers:
            extra["Retry-After"] = headers["retry-after"]
        return _Response(
            status, body,
            content_type=headers.get("content-type", "application/json"),
            headers=extra,
        )

    def _count_shard(self, shard: str, what: str) -> None:
        member = self._members.get(shard)
        if member is not None:
            self.registry.counter_add(f"serve.shard.{member.index}.{what}")
        self.registry.counter_add(f"serve.router.shard_{what}")

    # -- routing ----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> _Response:
        path, _, query_string = target.partition("?")
        path = path.rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if method == "GET" and path == "/healthz":
            return await self._health()
        if method == "GET" and path == "/metrics":
            return await self._metrics()
        if method == "GET" and path == "/ring":
            payload = await self._ring_payload(probe=True)
            return _Response(
                200, json.dumps(payload, sort_keys=True).encode()
            )
        if method == "POST" and path in ("/ring/join", "/ring/leave"):
            return await self._membership_endpoint(path, body)
        if method == "POST" and path in ("/jobs", "/plan"):
            return await self._route_submission(path, body)
        if method == "GET" and path == "/jobs":
            return await self._list_jobs()
        if len(parts) == 2 and parts[0] == "store":
            return await self._route_store(method, parts[1], body)
        if len(parts) >= 2 and parts[0] == "jobs":
            return await self._route_job(
                method, parts, query_string, body
            )
        raise ServeError(
            f"unknown endpoint {method} {path}", http_status=404
        )

    async def _membership_endpoint(
        self, path: str, body: bytes
    ) -> _Response:
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        action = "join" if path.endswith("join") else "leave"
        out = await self._membership(
            action, str(payload.get("url", "")),
            forget=bool(payload.get("forget", False)),
        )
        return _Response(200, json.dumps(out, sort_keys=True).encode())

    async def _route_store(
        self, method: str, digest: str, body: bytes
    ) -> _Response:
        shard = self._ring.node_for(digest)
        self._count_shard(shard, "routed")
        try:
            return await self._upstream(
                shard, method, f"/store/{digest}", body,
                content_type="application/octet-stream",
            )
        except DegradedError:
            # The owner is down but the store is shared: any live
            # member can serve (or accept) the digest's bytes.
            for url in self.shards:
                if url == shard:
                    continue
                try:
                    response = await self._upstream(
                        url, method, f"/store/{digest}", body,
                        content_type="application/octet-stream",
                        note=False,
                    )
                except ServeError:
                    continue
                if response.status < 500:
                    self.registry.counter_add("serve.router.store_served")
                    return response
            raise

    async def _route_submission(self, path: str, body: bytes) -> _Response:
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        spec_mapping = dict(payload)
        if path == "/plan":
            spec_mapping["experiment"] = "dse"
        spec_mapping.pop("priority", None)
        digest = spec_digest(normalize_spec(spec_mapping))
        shard = self._ring.node_for(digest)
        self._count_shard(shard, "routed")
        response = await self._upstream(shard, "POST", path, body)
        if response.status in (200, 202):
            try:
                job_id = json.loads(response.body)["job"]["id"]
                self._job_homes[job_id] = shard
                self._job_digests[job_id] = digest
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
        return response

    async def _route_job(
        self,
        method: str,
        parts: List[str],
        query_string: str,
        body: bytes,
    ) -> _Response:
        job_id = parts[1]
        sub = "/".join(parts[2:])
        path = f"/jobs/{job_id}" + (f"/{sub}" if sub else "")
        if query_string:
            path += f"?{query_string}"
        shard = self._job_homes.get(job_id)
        if shard is None:
            shard = await self._find_home(job_id)
        is_wait = method == "GET" and not sub and "wait=" in query_string
        try:
            if is_wait:
                return await self._coalesced_wait(shard, path)
            return await self._upstream(shard, method, path, body,
                                        timeout_s=UPSTREAM_TIMEOUT_S)
        except DegradedError:
            # The job's home is gone.  For result fetches the payload
            # may still live in the shared store — serve it from any
            # surviving member rather than failing a finished job.
            if method == "GET" and sub == "result":
                stored = await self._store_fallback(job_id)
                if stored is not None:
                    return stored
            raise

    async def _store_fallback(self, job_id: str) -> Optional[_Response]:
        digest = self._job_digests.get(job_id)
        if digest is None:
            return None
        dead_home = self._job_homes.get(job_id)
        for url in self.shards:
            if url == dead_home:
                continue
            try:
                response = await self._upstream(
                    url, "GET", f"/store/{digest}",
                    content_type="application/octet-stream", note=False,
                )
            except ServeError:
                continue
            if response.status == 200:
                self.registry.counter_add("serve.router.store_served")
                return _Response(200, response.body)
        return None

    async def _find_home(self, job_id: str) -> str:
        """Ask every shard who owns an id the router has not seen.

        Needed after a router restart (the id->home map is in-memory
        only) and for ids submitted directly to a shard.
        """
        shards = self.shards
        results = await asyncio.gather(
            *(
                self._upstream(url, "GET", f"/jobs/{job_id}")
                for url in shards
            ),
            return_exceptions=True,
        )
        for url, result in zip(shards, results):
            if isinstance(result, _Response) and result.status == 200:
                self._job_homes[job_id] = url
                return url
        raise ServeError(
            f"unknown job id {job_id!r} on any shard", http_status=404
        )

    async def _coalesced_wait(self, shard: str, path: str) -> _Response:
        """Share one upstream long-poll among identical waiters."""
        key = (shard, path)
        task = self._waits.get(key)
        if task is None:
            task = asyncio.ensure_future(
                self._upstream(
                    shard, "GET", path,
                    timeout_s=LONG_POLL_MAX_S + UPSTREAM_TIMEOUT_S,
                )
            )
            self._waits[key] = task
            task.add_done_callback(lambda _t: self._waits.pop(key, None))
        else:
            self.registry.counter_add("serve.router.wait_coalesced")
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            raise
        except ServeError:
            raise
        except Exception as error:
            raise ServeError(f"long-poll failed: {error}", http_status=502)

    # -- fan-out endpoints -------------------------------------------------

    async def _each_shard(self, path: str) -> List[Tuple[str, Any]]:
        """(shard, parsed JSON | ServeError) for a GET on every shard."""
        shards = self.shards
        responses = await asyncio.gather(
            *(self._upstream(url, "GET", path) for url in shards),
            return_exceptions=True,
        )
        out: List[Tuple[str, Any]] = []
        for url, response in zip(shards, responses):
            if isinstance(response, _Response):
                try:
                    out.append((url, json.loads(response.body)))
                except json.JSONDecodeError:
                    out.append(
                        (url, ServeError(f"shard {url} sent bad JSON"))
                    )
            elif isinstance(response, ServeError):
                out.append((url, response))
            else:
                out.append((url, ServeError(str(response))))
        return out

    async def _ring_payload(self, probe: bool = False) -> Dict[str, Any]:
        """Membership + ring version + per-shard health + store stats."""
        if probe:
            await self._probe_members()
        members = {
            url: member.describe()
            for url, member in self._members.items()
        }
        entries = 0
        total_bytes = 0
        for member in self._members.values():
            store = (member.health or {}).get("store")
            if isinstance(store, dict) and member.in_ring:
                # All shards normally share one store directory; take
                # the max rather than a double-counting sum.
                entries = max(entries, int(store.get("entries", 0) or 0))
                total_bytes = max(
                    total_bytes, int(store.get("total_bytes", 0) or 0)
                )
        return {
            "ring": self._ring.describe(),
            "members": members,
            "store": {"entries": entries, "total_bytes": total_bytes},
            "heartbeat": {
                "period_s": self.heartbeat_s,
                "timeout_s": self.heartbeat_timeout_s,
                "eject_after": self.eject_after,
            },
        }

    async def _health(self) -> _Response:
        shards: Dict[str, Any] = {}
        status = "ok"
        for url, payload in await self._each_shard("/healthz"):
            if isinstance(payload, ServeError):
                shards[url] = {"status": "unreachable",
                               "error": str(payload)}
                status = "degraded"
            else:
                shards[url] = payload
                if payload.get("status") != "ok":
                    status = "degraded"
        body = json.dumps(
            {
                "status": status,
                "role": "router",
                "shards": shards,
                "ring": self._ring.describe(),
            },
            sort_keys=True,
        ).encode()
        return _Response(200, body)

    async def _metrics(self) -> _Response:
        scratch = MetricsRegistry()
        scratch.merge_snapshot(self.registry.snapshot())
        for url, payload in await self._each_shard("/metrics"):
            member = self._members.get(url)
            index = member.index if member is not None else -1
            if isinstance(payload, ServeError):
                scratch.gauge_set(f"serve.shard.{index}.up", 0)
                continue
            scratch.gauge_set(f"serve.shard.{index}.up", 1)
            for name, value in payload.get("counters", {}).items():
                if name.startswith("serve.jobs."):
                    scratch.counter_add(
                        f"serve.shard.{index}.{name[len('serve.'):]}",
                        value,
                    )
            scratch.merge_snapshot(payload)
        body = json.dumps(scratch.snapshot(), sort_keys=True).encode()
        return _Response(200, body)

    async def _list_jobs(self) -> _Response:
        jobs: List[Dict[str, Any]] = []
        for url, payload in await self._each_shard("/jobs"):
            if isinstance(payload, ServeError):
                continue
            for record in payload.get("jobs", []):
                jobs.append(dict(record, shard=url))
        jobs.sort(key=lambda r: r.get("submitted_unix", 0), reverse=True)
        body = json.dumps({"jobs": jobs}, sort_keys=True).encode()
        return _Response(200, body)
