"""Bounded worker pool executing queued jobs in daemon threads.

Workers pull from the :class:`~repro.serve.queue.JobQueue` and run each
job through :func:`~repro.serve.jobs.execute_spec` under the sweep
layer's :class:`~repro.sim.parallel.FaultPolicy` retry discipline
(:func:`~repro.sim.parallel.call_with_retries`): deterministic library
errors fail the job immediately — rerunning them reproduces the
failure — while anything else is treated as transient and retried with
exponential backoff before the job is marked FAILED.

Threads (not processes) are the right pool here: one job already
amortises its heavy lifting through numpy replays, the on-disk replay
cache and per-job cell checkpoints, and results must land in the shared
queue under one lock.  ``REPRO_SERVE_WORKERS`` (or the ``workers``
argument) bounds concurrency; the default of 2 keeps a small host
responsive while still overlapping a long job with short ones.

With a shared :class:`~repro.serve.store.ResultStore` attached, a
worker probes the store before executing — a hit (another shard, or a
previous life of this one, already computed the digest) finishes the
job with the stored canonical bytes, which is the fleet's
cross-instance dedup — and publishes every computed payload back for
the rest of the fleet.

``REPRO_SERVE_JOB_HOOK`` (``module:function``, called with the job
spec just before execution) is the service-level twin of the sweep
layer's ``REPRO_FAULT_HOOK`` seam: the load harness uses it to emulate
calibrated service times (:mod:`repro.loadgen.pacing`) and the fault
tests to stall or fail jobs at a deterministic point.  No-op when
unset.
"""

from __future__ import annotations

import os
import threading
import time
from typing import List, Optional

from repro.errors import ExperimentError
from repro.obs import metrics as _metrics
from repro.serve.jobs import JobSpec, execute_spec
from repro.serve.queue import JobQueue
from repro.serve.store import ResultStore
from repro.sim.parallel import FaultPolicy, call_with_retries

#: Environment variable bounding the worker thread count.
WORKERS_ENV = "REPRO_SERVE_WORKERS"

#: ``module:function`` hook fired with the spec before each execution.
JOB_HOOK_ENV = "REPRO_SERVE_JOB_HOOK"

#: Default worker threads when neither argument nor environment decide.
DEFAULT_WORKERS = 2

#: How long an idle worker waits on the queue before re-checking stop.
_POLL_S = 0.1


def fire_job_hook(spec: JobSpec) -> None:
    """Invoke the ``REPRO_SERVE_JOB_HOOK`` injection point, if set."""
    hook = os.environ.get(JOB_HOOK_ENV)
    if not hook:
        return
    import importlib

    module_name, _, func_name = hook.partition(":")
    getattr(importlib.import_module(module_name), func_name)(spec)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > environment > default (2)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                )
        else:
            workers = DEFAULT_WORKERS
    if workers < 1:
        raise ExperimentError("serve workers must be >= 1")
    return workers


class WorkerPool:
    """N daemon threads draining a :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        workers: Optional[int] = None,
        policy: Optional[FaultPolicy] = None,
        state_dir: Optional[str] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.queue = queue
        self.workers = resolve_workers(workers)
        self.policy = policy if policy is not None else FaultPolicy.from_env()
        self.state_dir = state_dir
        self.store = store
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        _metrics.gauge_set("serve.workers", self.workers)

    def stop(self, wait: bool = True) -> None:
        """Ask workers to exit; with ``wait``, block until in-flight
        jobs finish (queued jobs are left queued — the drain path
        journals them)."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=_POLL_S)
            if job is None:
                continue
            if self.store is None:
                self._run_one(job)
                continue
            # Pin the digest for the whole dequeue-to-finish window so
            # the store's LRU cap can never evict this payload while
            # it is in flight (probe hit included — the bytes must
            # survive until the job record owns them).
            self.store.pin(job.digest)
            try:
                stored = self.store.get(job.digest)
                if stored is not None:
                    self.queue.finish(job, stored, computed=False)
                    continue
                self._run_one(job)
            finally:
                self.store.unpin(job.digest)

    def _run_one(self, job) -> None:
        start = time.perf_counter()
        try:
            result = call_with_retries(
                lambda: self._execute(job.spec),
                self.policy,
                retry_counter="serve.retries",
            )
        except Exception as error:
            self.queue.fail(job, error)
        else:
            self.queue.finish(job, result)
            if self.store is not None:
                self.store.put(job.digest, result)
            _metrics.timer_record(
                "serve.job", time.perf_counter() - start
            )

    def _execute(self, spec: JobSpec) -> bytes:
        fire_job_hook(spec)
        return execute_spec(spec, self.state_dir)
