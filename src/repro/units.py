"""Unit constants and conversion helpers.

All internal computation in :mod:`repro` uses SI base units (seconds,
joules, amperes, volts, watts, square metres).  The VLSI literature the
paper draws from reports values in engineering units (ns, pJ, uA, mm^2,
F^2), so this module provides named constants and converters to keep
call sites readable and to avoid silent order-of-magnitude mistakes.

Example
-------
>>> from repro import units
>>> 10 * units.NS
1e-08
>>> units.to_ns(2e-9)
2.0
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

# --- energy ---------------------------------------------------------------
J = 1.0
MJ = 1e-3
UJ = 1e-6
NJ = 1e-9
PJ = 1e-12
FJ = 1e-15

# --- current --------------------------------------------------------------
A = 1.0
MA = 1e-3
UA = 1e-6
NA = 1e-9

# --- voltage --------------------------------------------------------------
V = 1.0
MV = 1e-3

# --- power ----------------------------------------------------------------
W = 1.0
MW = 1e-3
UW = 1e-6
NW = 1e-9

# --- length / area --------------------------------------------------------
M = 1.0
MM = 1e-3
UM = 1e-6
NM = 1e-9
MM2 = 1e-6  # square metres per square millimetre
UM2 = 1e-12

# --- capacity -------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NS


def to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PJ


def to_nj(joules: float) -> float:
    """Convert joules to nanojoules."""
    return joules / NJ


def to_uw(watts: float) -> float:
    """Convert watts to microwatts."""
    return watts / UW


def to_mm2(square_metres: float) -> float:
    """Convert square metres to square millimetres."""
    return square_metres / MM2


def to_mb(n_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return n_bytes / MB


def feature_size_area(cell_size_f2: float, process_nm: float) -> float:
    """Physical area in m^2 of a cell given its size in F^2.

    ``F`` is the process feature size, so a cell of ``A`` F^2 at process
    ``s`` nm occupies ``A * (s nm)^2`` (the paper's equation (3) solved
    for physical area).
    """
    feature = process_nm * NM
    return cell_size_f2 * feature * feature
