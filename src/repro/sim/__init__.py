"""Sniper-equivalent multicore system simulator (paper Section IV)."""

from repro.sim.cache import AccessOutcome, CacheStats, SetAssocCache
from repro.sim.config import (
    ArchitectureConfig,
    CacheLevelConfig,
    DRAMConfig,
    gainestown,
)
from repro.sim.cpistack import COMPONENTS, CPIStack, cpi_stack, render_stacks
from repro.sim.directory import DirectoryStats, FullMapDirectory
from repro.sim.dram import DRAMSubsystem, DRAMTraffic, dram_traffic_from_stream
from repro.sim.energy import LLCEnergy, llc_energy
from repro.sim.hierarchy import (
    CoreCounters,
    LLCStream,
    PrivateResult,
    filter_private,
)
from repro.sim.llc import LLCCounts, estimate_mlp, simulate_llc
from repro.sim.multiprogram import MixResult, build_mix, simulate_mix
from repro.sim.replacement import POLICIES, RandomCache, SRRIPCache, make_cache
from repro.sim.results import NormalizedResult, SimResult, normalize
from repro.sim.system import (
    SimulationSession,
    assemble_result,
    replay_llc,
    simulate_system,
)
from repro.sim.timing import (
    CoreBreakdown,
    SystemTiming,
    llc_bank_busy_s,
    resolve_timing,
)

__all__ = [
    "AccessOutcome",
    "CacheStats",
    "SetAssocCache",
    "ArchitectureConfig",
    "CacheLevelConfig",
    "DRAMConfig",
    "gainestown",
    "COMPONENTS",
    "CPIStack",
    "cpi_stack",
    "render_stacks",
    "DirectoryStats",
    "FullMapDirectory",
    "DRAMSubsystem",
    "DRAMTraffic",
    "dram_traffic_from_stream",
    "MixResult",
    "build_mix",
    "simulate_mix",
    "LLCEnergy",
    "llc_energy",
    "CoreCounters",
    "LLCStream",
    "PrivateResult",
    "filter_private",
    "LLCCounts",
    "estimate_mlp",
    "simulate_llc",
    "POLICIES",
    "RandomCache",
    "SRRIPCache",
    "make_cache",
    "NormalizedResult",
    "SimResult",
    "normalize",
    "SimulationSession",
    "assemble_result",
    "replay_llc",
    "simulate_system",
    "CoreBreakdown",
    "SystemTiming",
    "llc_bank_busy_s",
    "resolve_timing",
]
