"""Parallel experiment fan-out over deterministic sweep cells.

The experiment suite is embarrassingly parallel at the granularity of
one (workload, core-count) cell: each cell generates a trace, replays it
through the private levels once, and sweeps the LLC models that share
that replay.  This module fans cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Workers receive only small, picklable :class:`SweepCell` keys —
(workload, seed, length, threads, architecture, model names) — and
regenerate traces deterministically from them, so no multi-megabyte
trace or stream ever crosses the process boundary; only the compact
:class:`~repro.sim.results.SimResult` objects come back.  Trace
generation is seeded (:mod:`repro.workloads.generators`), so a worker's
trace is bit-identical to the one the serial path would build, and the
shared on-disk replay cache (:mod:`repro.sim.replay_cache`) lets the
parent — and later runs — reuse whatever the workers replayed.

``jobs`` semantics everywhere in the experiments layer: ``1`` (default)
runs serially in-process, ``N > 1`` uses N worker processes, and ``0``
means "one per CPU" (:func:`default_jobs`).

Invariants
----------

- Results come back in input order regardless of completion order, so a
  parallel run is *output-identical* to a serial one (the CI smoke job
  diffs the two).
- Only :class:`SweepCell` keys cross the boundary outbound and only
  :class:`~repro.sim.results.SimResult` objects (plus, when metrics are
  on, a plain-dict metrics snapshot) come back — never traces or
  streams.
- Trace regeneration in a worker is bit-identical to the serial path:
  cells carry the resolved ``(workload, seed, n_accesses, n_threads)``
  key and generation is fully seeded.

When run metrics are enabled (:mod:`repro.obs`) each worker collects
into its own registry — counters from the instrumented layers plus a
``parallel.worker.<pid>.cell`` timer per cell — and returns a snapshot
that the parent merges, so per-worker utilization survives the pool
boundary.  A :class:`~repro.obs.progress.ProgressLine` tracks cell
completions on interactive terminals.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.obs import metrics as _metrics
from repro.obs.progress import ProgressLine
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.results import SimResult


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: one per CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value (None -> 1, 0 -> cpu count)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ExperimentError("jobs must be >= 0")
    return jobs if jobs > 0 else default_jobs()


@dataclass(frozen=True)
class SweepCell:
    """One unit of parallel work: a workload replayed against models.

    The cell is a pure *key*: everything a worker needs to regenerate
    the trace deterministically and run the sweep.  ``n_accesses`` /
    ``n_threads`` of None use the profile's defaults; ``arch`` of None
    uses the paper's Gainestown.
    """

    workload: str
    configuration: str
    model_names: Tuple[str, ...]
    seed: int
    n_accesses: Optional[int] = None
    n_threads: Optional[int] = None
    arch: Optional[ArchitectureConfig] = None


def resolve_model(name: str, configuration: str):
    """Model lookup treating ``"SRAM"`` as the baseline of the
    configuration (mirrors the experiment drivers' convention)."""
    from repro.nvsim.published import published_model, sram_baseline

    if name == "SRAM":
        return sram_baseline(configuration)
    return published_model(name, configuration)


def run_cell(cell: SweepCell) -> Dict[str, SimResult]:
    """Execute one cell (in a worker or inline): regenerate the trace,
    share one private replay across the cell's models, return results
    keyed by model name."""
    from repro.sim.system import SimulationSession
    from repro.workloads.generators import generate_from_profile
    from repro.workloads.profiles import profile

    bench = profile(cell.workload)
    trace = generate_from_profile(
        bench,
        seed=cell.seed,
        n_accesses=cell.n_accesses,
        n_threads=cell.n_threads,
    )
    session = SimulationSession(
        trace, arch=cell.arch or gainestown(), configuration=cell.configuration
    )
    return {
        name: session.run(resolve_model(name, cell.configuration))
        for name in cell.model_names
    }


def _run_cell_observed(cell: SweepCell) -> Tuple[Dict[str, SimResult], Dict[str, Any]]:
    """Worker wrapper: run one cell under a fresh metrics registry and
    return ``(results, snapshot)`` so the parent can merge what the
    instrumented layers recorded on this side of the pool boundary."""
    with _metrics.scoped_registry() as registry:
        start = time.perf_counter()
        result = run_cell(cell)
        elapsed = time.perf_counter() - start
        registry.timer_record(f"parallel.worker.{os.getpid()}.cell", elapsed)
        registry.counter_add("parallel.cells")
    return result, registry.snapshot()


def run_cells(
    cells: Sequence[SweepCell], jobs: Optional[int] = None
) -> List[Dict[str, SimResult]]:
    """Run cells, serially or across a process pool.

    Results are returned in input order regardless of completion order,
    so parallel runs are output-identical to serial ones.  Worker
    exceptions propagate to the caller.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    observe = _metrics.enabled()
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        if not observe:
            return list(pool.map(run_cell, cells))
        results: List[Dict[str, SimResult]] = []
        with ProgressLine(total=len(cells), label="cells") as progress:
            for result, snapshot in pool.map(_run_cell_observed, cells):
                _metrics.merge_snapshot(snapshot)
                results.append(result)
                progress.tick()
        return results
