"""Parallel experiment fan-out over deterministic sweep cells.

The experiment suite is embarrassingly parallel at the granularity of
one (workload, core-count) cell: each cell generates a trace, replays it
through the private levels once, and sweeps the LLC models that share
that replay.  This module fans cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Workers receive only small, picklable :class:`SweepCell` keys —
(workload, seed, length, threads, architecture, model names) — so no
multi-megabyte trace or stream ever crosses the process boundary; only
the compact :class:`~repro.sim.results.SimResult` objects come back.  A
cell may carry a :class:`~repro.trace.stream.TraceSpill` handle (paths
to ``.npy`` columns the parent wrote once): the worker then maps the
trace read-only through the page cache — zero copies, zero pickling —
instead of regenerating it.  Either way the trace is bit-identical to
the one the serial path would build (generation is fully seeded,
:mod:`repro.workloads.generators`), and the shared on-disk replay cache
(:mod:`repro.sim.replay_cache`) lets the parent — and later runs —
reuse whatever the workers replayed.

``jobs`` semantics everywhere in the experiments layer: ``1`` (default)
runs serially in-process, ``N > 1`` uses N worker processes, and ``0``
means "one per CPU" (:func:`default_jobs`).

Fault tolerance
---------------

Long sweeps die in three characteristic ways, and :func:`run_cells`
survives each (policy knobs in :class:`FaultPolicy`, environment
defaults below):

- *A worker raises or is killed.*  Non-library exceptions are treated
  as transient and the cell retries with exponential backoff
  (``max_retries``); a killed worker breaks the whole pool
  (``BrokenProcessPool``), which is recovered by respawning the pool
  once (``pool_respawns``) and, if it breaks again, degrading to
  in-process serial execution for the surviving cells.  Deterministic
  library errors (:class:`~repro.errors.ReproError`) fail fast — the
  cell would fail identically on every retry.
- *A worker hangs.*  ``cell_timeout_s`` bounds the wait per collected
  cell (``REPRO_CELL_TIMEOUT``); on timeout the pool — which still owns
  the hung process — is abandoned and force-killed, and the timed-out
  cell is charged an attempt.
- *Some cells are unrecoverable.*  The sweep never discards finished
  work: it raises :class:`~repro.errors.PartialResultError` carrying
  every completed :class:`~repro.sim.results.SimResult`, and the
  ``on_result`` callback (the checkpoint journal's hook,
  :mod:`repro.sim.checkpoint`) has already been invoked for each of
  them in completion order.

Environment defaults: ``REPRO_CELL_TIMEOUT`` (seconds, unset = no
timeout), ``REPRO_CELL_RETRIES`` (default 2), ``REPRO_RETRY_BACKOFF``
(base seconds, default 0.1).  ``REPRO_FAULT_HOOK`` names a
``module:function`` invoked with each cell before it runs — the fault
injection point the ``tests/faults`` harness uses to kill or delay
workers deliberately; leave it unset in production.

Invariants
----------

- Results come back in input order regardless of completion order, so a
  parallel run is *output-identical* to a serial one — and, via the
  checkpoint journal, a resumed run is output-identical to an
  uninterrupted one (the CI smoke jobs diff all three).
- Only :class:`SweepCell` keys cross the boundary outbound and only
  :class:`~repro.sim.results.SimResult` objects (plus, when metrics are
  on, a plain-dict metrics snapshot) come back — never traces or
  streams.
- The trace a worker simulates is bit-identical to the serial path's:
  cells carry the resolved ``(workload, seed, n_accesses, n_threads)``
  key and generation is fully seeded; a spill handle, when present,
  holds exactly the trace that key would regenerate.
- Retries and pool respawns never double-report a cell: a result is
  collected (and ``on_result`` fired) exactly once per cell.

When run metrics are enabled (:mod:`repro.obs`) each worker collects
into its own registry — counters from the instrumented layers plus a
``parallel.worker.<pid>.cell`` timer per cell — and returns a snapshot
that the parent merges, so per-worker utilization survives the pool
boundary.  Fault handling is counted too: ``parallel.retries``,
``parallel.timeouts``, ``parallel.worker_failures``,
``parallel.pool_respawns`` and ``parallel.serial_fallback_cells``.  A
:class:`~repro.obs.progress.ProgressLine` tracks cell completions on
interactive terminals.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError, PartialResultError, ReproError
from repro.obs import metrics as _metrics
from repro.obs.progress import ProgressLine
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.results import SimResult
from repro.trace.stream import TraceSpill

#: Per-cell timeout in seconds (unset/empty = wait forever).
TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: Retries per cell for transient failures (default 2).
RETRIES_ENV = "REPRO_CELL_RETRIES"

#: Base backoff in seconds between retries (default 0.1, doubles).
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: ``module:function`` fault-injection hook fired before every cell.
FAULT_HOOK_ENV = "REPRO_FAULT_HOOK"

#: Callback fired once per completed cell: ``(index, cell, results)``.
OnResult = Callable[[int, "SweepCell", Dict[str, SimResult]], None]


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: one per CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value (None -> 1, 0 -> cpu count)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ExperimentError("jobs must be >= 0")
    return jobs if jobs > 0 else default_jobs()


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ExperimentError(f"{name} must be a number, got {raw!r}")


@dataclass(frozen=True)
class FaultPolicy:
    """How :func:`run_cells` reacts to worker failures.

    ``cell_timeout_s`` of None waits forever.  ``max_retries`` counts
    *re*-attempts: 2 means up to three executions of one cell.  Backoff
    doubles per attempt (``backoff_s * 2**(attempt-1)``).
    ``pool_respawns`` bounds how many times a broken/abandoned pool is
    rebuilt before degrading to in-process serial execution.
    """

    cell_timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.1
    pool_respawns: int = 1

    @classmethod
    def from_env(
        cls,
        cell_timeout_s: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> "FaultPolicy":
        """Build a policy from the environment, with optional overrides
        (CLI flags win over env vars win over defaults)."""
        if cell_timeout_s is None:
            cell_timeout_s = _env_float(TIMEOUT_ENV)
        if max_retries is None:
            env_retries = _env_float(RETRIES_ENV)
            max_retries = 2 if env_retries is None else int(env_retries)
        backoff = _env_float(BACKOFF_ENV)
        if max_retries < 0:
            raise ExperimentError("cell retries must be >= 0")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ExperimentError("cell timeout must be > 0 seconds")
        return cls(
            cell_timeout_s=cell_timeout_s,
            max_retries=max_retries,
            backoff_s=0.1 if backoff is None else max(0.0, backoff),
        )


@dataclass(frozen=True)
class SweepCell:
    """One unit of parallel work: a workload replayed against models.

    The cell is a pure *key*: everything a worker needs to regenerate
    the trace deterministically and run the sweep.  ``n_accesses`` /
    ``n_threads`` of None use the profile's defaults; ``arch`` of None
    uses the paper's Gainestown.

    ``trace_spill`` is an optional zero-copy shortcut: a
    :class:`~repro.trace.stream.TraceSpill` handle to the same trace the
    key describes, already written to disk by the parent.  Workers map
    it read-only instead of regenerating — bit-identical either way,
    since generation is fully seeded — so the handle never affects
    results, checkpoints digests or journal records.
    """

    workload: str
    configuration: str
    model_names: Tuple[str, ...]
    seed: int
    n_accesses: Optional[int] = None
    n_threads: Optional[int] = None
    arch: Optional[ArchitectureConfig] = None
    trace_spill: Optional[TraceSpill] = None


def resolve_model(name: str, configuration: str):
    """Model lookup treating ``"SRAM"`` as the baseline of the
    configuration (mirrors the experiment drivers' convention)."""
    from repro.nvsim.published import published_model, sram_baseline

    if name == "SRAM":
        return sram_baseline(configuration)
    return published_model(name, configuration)


def fire_fault_hook(cell: SweepCell) -> None:
    """Invoke the ``REPRO_FAULT_HOOK`` injection point, if configured.

    The hook — ``module:function``, called with the cell — exists so the
    fault-injection test harness can kill, delay or fail a worker at a
    deterministic point; it is a no-op when the variable is unset.
    """
    spec = os.environ.get(FAULT_HOOK_ENV)
    if not spec:
        return
    import importlib

    module_name, _, func_name = spec.partition(":")
    getattr(importlib.import_module(module_name), func_name)(cell)


def run_cell(cell: SweepCell) -> Dict[str, SimResult]:
    """Execute one cell (in a worker or inline): map or regenerate the
    trace, share one private replay across the cell's models, return
    results keyed by model name."""
    from repro.sim.system import SimulationSession
    from repro.workloads.generators import generate_from_profile
    from repro.workloads.profiles import profile

    fire_fault_hook(cell)
    if cell.trace_spill is not None:
        trace = cell.trace_spill.load()
        _metrics.counter_add("parallel.spill_loads")
    else:
        bench = profile(cell.workload)
        trace = generate_from_profile(
            bench,
            seed=cell.seed,
            n_accesses=cell.n_accesses,
            n_threads=cell.n_threads,
        )
    session = SimulationSession(
        trace, arch=cell.arch or gainestown(), configuration=cell.configuration
    )
    return {
        name: session.run(resolve_model(name, cell.configuration))
        for name in cell.model_names
    }


def _run_cell_observed(cell: SweepCell) -> Tuple[Dict[str, SimResult], Dict[str, Any]]:
    """Worker wrapper: run one cell under a fresh metrics registry and
    return ``(results, snapshot)`` so the parent can merge what the
    instrumented layers recorded on this side of the pool boundary."""
    with _metrics.scoped_registry() as registry:
        start = time.perf_counter()
        result = run_cell(cell)
        elapsed = time.perf_counter() - start
        registry.timer_record(f"parallel.worker.{os.getpid()}.cell", elapsed)
        registry.counter_add("parallel.cells")
    return result, registry.snapshot()


def _backoff(policy: FaultPolicy, attempt: int) -> None:
    delay = policy.backoff_s * (2 ** max(0, attempt - 1))
    if delay > 0:
        time.sleep(delay)


def call_with_retries(
    fn: Callable[[], Any],
    policy: FaultPolicy,
    retry_counter: str = "parallel.retries",
) -> Any:
    """Call ``fn`` with the policy's transient-retry loop.

    The retry discipline of a sweep cell, exposed for any caller with
    the same failure taxonomy (the experiment service's worker threads
    use it per job): deterministic library failures
    (:class:`~repro.errors.ReproError`) fail fast — a retry would
    reproduce them — while any other exception is treated as transient
    and retried up to ``policy.max_retries`` times with exponential
    backoff, counting each retry in ``retry_counter``.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except ReproError:
            raise  # deterministic: retrying reproduces the same failure
        except Exception:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            _metrics.counter_add(retry_counter)
            _backoff(policy, attempt)


def _retrying_run(cell: SweepCell, policy: FaultPolicy) -> Dict[str, SimResult]:
    """Run one cell in-process with the policy's transient-retry loop."""
    return call_with_retries(lambda: run_cell(cell), policy)


class _PoolFailure(Exception):
    """Internal: the current pool must be abandoned (broken or hung)."""


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, force-killing workers.

    Workers are killed *before* ``shutdown`` is requested: the
    executor's manager thread then sees their sentinels fire, declares
    the pool broken, and terminates itself.  Requesting shutdown first
    can leave that thread blocked forever on a result from the
    already-dead hung worker, which in turn stalls interpreter exit
    (``concurrent.futures`` joins manager threads atexit)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    wakeup = getattr(pool, "_executor_manager_thread_wakeup", None)
    if wakeup is not None:  # belt-and-braces: re-check broken state
        try:
            wakeup.wakeup()
        except Exception:
            pass


def _drain_pool(
    pool: ProcessPoolExecutor,
    worker: Callable,
    pending: Dict[int, SweepCell],
    results: Dict[int, Dict[str, SimResult]],
    failures: Dict[int, str],
    attempts: Dict[int, int],
    policy: FaultPolicy,
    collect: Callable[[int, Any], None],
) -> None:
    """Submit every pending cell and collect what completes.

    Mutates ``pending``/``results``/``failures`` in place.  Transiently
    failed cells stay in ``pending`` (the caller loops and resubmits);
    raises :class:`_PoolFailure` when the pool itself must go.
    """
    try:
        futures = {
            index: pool.submit(worker, cell)
            for index, cell in sorted(pending.items())
        }
    except Exception:
        raise _PoolFailure("submit failed: pool already broken")
    for index, future in futures.items():
        cell = pending[index]
        try:
            value = future.result(timeout=policy.cell_timeout_s)
        except FuturesTimeoutError:
            attempts[index] += 1
            _metrics.counter_add("parallel.timeouts")
            if attempts[index] > policy.max_retries:
                failures[index] = (
                    f"cell {cell.workload}/{cell.configuration} timed out "
                    f"after {policy.cell_timeout_s:g}s "
                    f"({attempts[index]} attempts)"
                )
                del pending[index]
            raise _PoolFailure("cell timeout: abandoning hung pool")
        except BrokenProcessPool:
            attempts[index] += 1
            _metrics.counter_add("parallel.worker_failures")
            if attempts[index] > policy.max_retries:
                failures[index] = (
                    f"cell {cell.workload}/{cell.configuration} lost its "
                    f"worker {attempts[index]} times (pool broken)"
                )
                del pending[index]
            raise _PoolFailure("worker died: pool broken")
        except ReproError as error:
            # Deterministic library failure: every retry would reproduce it.
            failures[index] = str(error)
            del pending[index]
        except Exception as error:
            attempts[index] += 1
            if attempts[index] > policy.max_retries:
                failures[index] = f"{type(error).__name__}: {error}"
                del pending[index]
            else:
                _metrics.counter_add("parallel.retries")
                _backoff(policy, attempts[index])
        else:
            del pending[index]
            collect(index, value)


def _run_pool(
    cells: Sequence[SweepCell],
    jobs: int,
    policy: FaultPolicy,
    on_result: Optional[OnResult],
) -> List[Dict[str, SimResult]]:
    observe = _metrics.enabled()
    worker = _run_cell_observed if observe else run_cell
    pending: Dict[int, SweepCell] = dict(enumerate(cells))
    results: Dict[int, Dict[str, SimResult]] = {}
    failures: Dict[int, str] = {}
    attempts: Dict[int, int] = {index: 0 for index in pending}

    with ProgressLine(total=len(cells), label="cells") as progress:

        def collect(index: int, value: Any) -> None:
            if observe:
                value, snapshot = value
                _metrics.merge_snapshot(snapshot)
            results[index] = value
            if on_result is not None:
                on_result(index, cells[index], value)
            progress.tick()

        respawns_left = policy.pool_respawns
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=min(jobs, len(cells))
        )
        try:
            while pending and pool is not None:
                try:
                    _drain_pool(
                        pool, worker, pending, results, failures,
                        attempts, policy, collect,
                    )
                except _PoolFailure:
                    _abandon_pool(pool)
                    pool = None
                    if pending and respawns_left > 0:
                        respawns_left -= 1
                        _metrics.counter_add("parallel.pool_respawns")
                        pool = ProcessPoolExecutor(
                            max_workers=min(jobs, len(pending))
                        )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        # Out of pool respawns: finish the survivors in-process.
        if pending:
            _metrics.counter_add("parallel.serial_fallback_cells", len(pending))
            for index in sorted(pending):
                cell = pending.pop(index)
                try:
                    collect(index, worker(cell))
                except Exception as error:
                    failures[index] = f"{type(error).__name__}: {error}"

    if failures:
        raise PartialResultError(
            f"{len(failures)} of {len(cells)} cells failed "
            f"({len(results)} completed): "
            + "; ".join(failures[i] for i in sorted(failures)[:3]),
            completed=results,
            failures=failures,
        )
    return [results[index] for index in range(len(cells))]


def _run_serial(
    cells: Sequence[SweepCell],
    policy: FaultPolicy,
    on_result: Optional[OnResult],
) -> List[Dict[str, SimResult]]:
    results: Dict[int, Dict[str, SimResult]] = {}
    failures: Dict[int, str] = {}
    for index, cell in enumerate(cells):
        try:
            value = _retrying_run(cell, policy)
        except Exception as error:
            failures[index] = f"{type(error).__name__}: {error}"
            continue
        results[index] = value
        if on_result is not None:
            on_result(index, cell, value)
    if failures:
        raise PartialResultError(
            f"{len(failures)} of {len(cells)} cells failed "
            f"({len(results)} completed): "
            + "; ".join(failures[i] for i in sorted(failures)[:3]),
            completed=results,
            failures=failures,
        )
    return [results[index] for index in range(len(cells))]


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    policy: Optional[FaultPolicy] = None,
    on_result: Optional[OnResult] = None,
) -> List[Dict[str, SimResult]]:
    """Run cells, serially or across a process pool, fault-tolerantly.

    Results are returned in input order regardless of completion order,
    so parallel runs are output-identical to serial ones.  ``policy``
    (default: :meth:`FaultPolicy.from_env`) governs timeout, retry and
    pool recovery; ``on_result`` fires once per completed cell in
    completion order (the checkpoint journal's hook).  When some cells
    are unrecoverable the completed ones are never discarded: a
    :class:`~repro.errors.PartialResultError` carries them all.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if policy is None:
        policy = FaultPolicy.from_env()
    if jobs <= 1 or len(cells) <= 1:
        return _run_serial(cells, policy, on_result)
    return _run_pool(cells, jobs, policy, on_result)
