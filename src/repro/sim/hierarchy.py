"""Private cache levels: filtering a trace down to LLC traffic.

Each core owns a private L1D and L2 (Table IV).  This module replays a
trace through the private levels once and emits the *LLC stream* — the
demand reads (L2 misses) and writes (L2 dirty writebacks, plus coherence
writebacks) the shared LLC actually sees — together with per-core
counters the timing model needs.

The private levels are technology-independent (always SRAM), so this
expensive pass runs once per workload and its output is reused across
every LLC technology and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.sim.cache import SetAssocCache
from repro.sim.config import ArchitectureConfig
from repro.sim.directory import DirectoryStats, FullMapDirectory
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace


@dataclass
class CoreCounters:
    """Per-core instruction and private-cache counters."""

    instructions: int = 0
    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0


@dataclass
class LLCStream:
    """The access stream presented to the shared LLC.

    Columns are parallel arrays: block address, write flag (True for
    writebacks into the LLC), issuing core, and the issuing core's
    instruction position at the time (used to estimate memory-level
    parallelism from miss clustering).
    """

    blocks: np.ndarray
    writes: np.ndarray
    cores: np.ndarray
    instr_positions: np.ndarray

    def __len__(self) -> int:
        return len(self.blocks)

    def columns(self):
        """Cached plain-list views of the four columns.

        The batched engine replays one stream at several LLC capacities;
        converting the arrays once (``ndarray.tolist`` is a single C
        call) and reusing the lists saves a conversion per replay.
        """
        cached = getattr(self, "_columns", None)
        if cached is None or len(cached[0]) != len(self):
            cached = (
                self.blocks.tolist(),
                self.writes.tolist(),
                self.cores.tolist(),
                self.instr_positions.tolist(),
            )
            self._columns = cached
        return cached

    @property
    def n_reads(self) -> int:
        """Demand reads reaching the LLC."""
        return int(len(self) - self.writes.sum())

    @property
    def n_writes(self) -> int:
        """Writeback writes reaching the LLC."""
        return int(self.writes.sum())


@dataclass
class PrivateResult:
    """Outcome of replaying a trace through the private levels."""

    stream: LLCStream
    per_core: List[CoreCounters]
    directory: DirectoryStats
    n_threads: int

    @property
    def total_instructions(self) -> int:
        """Instructions across all cores."""
        return sum(c.instructions for c in self.per_core)

    @property
    def total_accesses(self) -> int:
        """Memory accesses across all cores."""
        return sum(c.accesses for c in self.per_core)


def filter_private(
    trace: Trace, arch: ArchitectureConfig, engine: Optional[str] = None
) -> PrivateResult:
    """Replay a trace through per-core L1D/L2 and emit the LLC stream.

    Threads map to cores by id modulo ``arch.n_cores``.  Multi-threaded
    traces additionally exercise the full-map directory: stores to blocks
    shared across cores invalidate remote copies, and modified remote
    copies are written back through the LLC.

    ``engine`` selects the replay implementation: ``"fast"`` (the batched
    engine in :mod:`repro.sim.engine`, the default) or ``"reference"``
    (the dict-of-caches loop below).  The ``"vector"`` engine only
    vectorizes the shared-LLC replay, so here it routes to the batched
    loop.  All produce identical results; ``None`` defers to
    ``$REPRO_SIM_ENGINE``.

    When run metrics are enabled (:mod:`repro.obs`), the replay is
    wrapped in a ``sim.private_replay`` span and the per-level event
    totals — accesses, L1/L2 hits and misses, emitted LLC stream traffic,
    coherence invalidations — are recorded, tagged with the resolved
    engine name (``vector`` counts as ``vector`` even though the batched
    loop serves it).
    """
    from repro.sim.engine import filter_private_fast, resolve_engine

    eng = resolve_engine(engine)
    with _metrics.span("sim.private_replay"):
        if eng in ("fast", "vector"):
            result = filter_private_fast(trace, arch)
        else:
            result = _filter_private_reference(trace, arch)
    if _metrics.enabled():
        _metrics.counter_add(f"sim.engine.{eng}.private_replays")
        _metrics.counter_add("sim.private.accesses", len(trace))
        _metrics.counter_add(
            "sim.l1.hits", sum(c.l1_hits for c in result.per_core)
        )
        _metrics.counter_add(
            "sim.l1.misses", sum(c.l1_misses for c in result.per_core)
        )
        _metrics.counter_add(
            "sim.l2.hits", sum(c.l2_hits for c in result.per_core)
        )
        _metrics.counter_add(
            "sim.l2.misses", sum(c.l2_misses for c in result.per_core)
        )
        _metrics.counter_add("sim.llc_stream.reads", result.stream.n_reads)
        _metrics.counter_add("sim.llc_stream.writebacks", result.stream.n_writes)
        _metrics.counter_add(
            "sim.directory.invalidations", result.directory.invalidations_sent
        )
    return result


def _filter_private_reference(trace: Trace, arch: ArchitectureConfig) -> PrivateResult:
    """The reference dict-of-caches private-level replay."""
    n_cores = arch.n_cores
    l1 = [
        SetAssocCache(arch.l1d.capacity_bytes, arch.l1d.block_bytes, arch.l1d.associativity)
        for _ in range(n_cores)
    ]
    l2 = [
        SetAssocCache(arch.l2.capacity_bytes, arch.l2.block_bytes, arch.l2.associativity)
        for _ in range(n_cores)
    ]
    counters = [CoreCounters() for _ in range(n_cores)]
    n_threads = max(1, trace.n_threads)
    use_directory = n_threads > 1
    directory = FullMapDirectory(n_cores)

    out_blocks: List[int] = []
    out_writes: List[bool] = []
    out_cores: List[int] = []
    out_ipos: List[int] = []

    def emit(block: int, is_write: bool, core: int, ipos: int) -> None:
        out_blocks.append(block)
        out_writes.append(is_write)
        out_cores.append(core)
        out_ipos.append(ipos)

    addresses = trace.addresses
    writes = trace.writes
    thread_ids = trace.thread_ids
    gaps = trace.gaps

    for i in range(len(trace)):
        block = int(addresses[i]) >> BLOCK_BITS
        is_write = bool(writes[i])
        core = int(thread_ids[i]) % n_cores
        counter = counters[core]
        counter.instructions += int(gaps[i]) + 1
        counter.accesses += 1
        ipos = counter.instructions

        outcome1 = l1[core].access(block, is_write)
        if outcome1.dirty_victim is not None:
            # L1 dirty eviction drops into the private L2.
            spilled = l2[core].fill(outcome1.dirty_victim, dirty=True)
            if spilled is not None:
                emit(spilled, True, core, ipos)
                if use_directory:
                    directory.on_evict(core, spilled)
        if outcome1.hit:
            counter.l1_hits += 1
            if is_write and use_directory:
                _propagate_coherence(
                    directory, l1, l2, core, block, True, emit, ipos
                )
            continue

        counter.l1_misses += 1
        outcome2 = l2[core].access(block, False)
        if outcome2.dirty_victim is not None:
            emit(outcome2.dirty_victim, True, core, ipos)
            if use_directory:
                directory.on_evict(core, outcome2.dirty_victim)
        if outcome2.hit:
            counter.l2_hits += 1
        else:
            counter.l2_misses += 1
            emit(block, False, core, ipos)
            if arch.l2_next_line_prefetch:
                # Next-line prefetch: pull block+1 into the private L2.
                # The prefetch fetch reaches the LLC as a read but never
                # stalls the core (it carries the same position).
                next_block = block + 1
                if not l2[core].contains(next_block):
                    spilled = l2[core].fill(next_block, dirty=False)
                    if spilled is not None:
                        emit(spilled, True, core, ipos)
                        if use_directory:
                            directory.on_evict(core, spilled)
                    emit(next_block, False, core, ipos)
        if use_directory:
            _propagate_coherence(
                directory, l1, l2, core, block, is_write, emit, ipos
            )

    stream = LLCStream(
        blocks=np.array(out_blocks, dtype=np.uint64),
        writes=np.array(out_writes, dtype=bool),
        cores=np.array(out_cores, dtype=np.uint16),
        instr_positions=np.array(out_ipos, dtype=np.uint64),
    )
    return PrivateResult(
        stream=stream,
        per_core=counters,
        directory=directory.stats,
        n_threads=n_threads,
    )


def _propagate_coherence(directory, l1, l2, core, block, exclusive, emit, ipos):
    """Apply a directory transaction and its invalidation fallout."""
    victims = directory.on_fill(core, block, exclusive=exclusive)
    for victim_core in victims:
        dirty = l1[victim_core].invalidate(block)
        dirty = l2[victim_core].invalidate(block) or dirty
        if dirty:
            # Modified remote copy is written back through the LLC.
            emit(block, True, victim_core, ipos)
