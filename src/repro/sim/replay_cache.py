"""Persistent on-disk cache for expensive replay results.

The two replay stages are pure functions of their inputs: a
:class:`~repro.sim.hierarchy.PrivateResult` depends only on the trace
contents and the private-level architecture (core count, L1/L2 geometry,
prefetch flag), and an :class:`~repro.sim.llc.LLCCounts` additionally on
the LLC geometry and MLP constants.  This module caches both on disk,
keyed by a content fingerprint, so repeated experiment runs, the
``benchmarks/`` suite and parallel workers all skip redundant replays.

Keys are *content-addressed*: the trace fingerprint hashes the raw
column bytes (not the generator seed), so any trace — synthetic, loaded
from a file, or hand-built — caches correctly, and regenerating the same
(workload, seed, length) trace in another process produces the same key.
The engine version is part of every key; bump :data:`CACHE_VERSION`
whenever replay semantics change to invalidate stale entries.

Configuration (environment):

- ``REPRO_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro/replay``).
- ``REPRO_REPLAY_CACHE`` — set to ``0`` to disable entirely.
- ``REPRO_CACHE_MAX_MB`` — size cap in megabytes; when a store pushes
  the directory above it, least-recently-used entries (by mtime — hits
  re-touch their entry) are evicted until back under.  Entries written
  by the evicting process itself are never evicted, so a live run
  cannot starve its own working set.  Unset = unbounded.

Integrity
---------

Entries are written atomically (temp file + ``os.replace``), so
concurrent writers — e.g. the :mod:`repro.sim.parallel` worker pool —
never corrupt each other, and each entry embeds a checksum
(blake2b of the pickled payload behind a magic header) verified on
every load: a truncated, bit-flipped or torn entry is *quarantined* —
deleted and recomputed, counted in ``replay_cache.corrupt`` — never
silently deserialized.  A worker killed between temp-file creation and
``os.replace`` leaves a stale ``*.tmp`` file; cache open sweeps any
older than :data:`TMP_SWEEP_AGE_S` (young ones may belong to a live
concurrent writer).  Traces shorter than ``min_accesses`` are not
cached: unit-test and hypothesis traces would otherwise litter the
cache with thousands of tiny files.

Invariants
----------

- A cache hit is indistinguishable from recomputation: values are the
  exact pickled :class:`~repro.sim.hierarchy.PrivateResult` /
  :class:`~repro.sim.llc.LLCCounts` objects the replay produced, and
  the checksum guarantees the bytes are the bytes that were stored.
- Keys cover *every* input the replay depends on and nothing more:
  the trace content fingerprint (:func:`trace_fingerprint` over the raw
  column bytes), the private-geometry fields (:func:`private_arch_key`),
  the LLC-geometry fields (:func:`llc_geometry_key`), and
  :data:`CACHE_VERSION`.  Timing/energy constants are deliberately
  excluded — they are applied after replay.
- Unreadable entries are never fatal: any checksum or unpickling
  failure is a miss (``replay_cache.corrupt``) followed by
  recomputation, and the bad file is removed so it cannot fail again.
- Eviction never removes an entry this process wrote or hit during its
  lifetime (the live set), so a running sweep keeps its working set
  even under an undersized cap.

When run metrics are enabled (:mod:`repro.obs`), every probe and store
is counted (``replay_cache.hits`` / ``.misses`` / ``.corrupt`` /
``.stores`` / ``.evictions`` / ``.tmp_swept``) along with bytes moved
(``.bytes_read`` / ``.bytes_written`` / ``.evicted_bytes``), which is
what ``repro-experiments metrics-summary`` turns into the cache
hit-rate line.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.sim.config import ArchitectureConfig
from repro.trace.stream import Trace

#: Bump to invalidate all previously cached replays.
#: 2: entries gained the checksummed container format (magic + digest).
CACHE_VERSION = 2

#: Entry container magic; the format is ``MAGIC + blake2b(payload,16) +
#: payload`` where payload is the pickled value.
ENTRY_MAGIC = b"RPC2"

#: Bytes of blake2b digest embedded after the magic.
_DIGEST_SIZE = 16

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache ("0" disables).
CACHE_ENABLE_ENV = "REPRO_REPLAY_CACHE"

#: Environment variable capping the cache size in megabytes.
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Traces shorter than this are never cached (tests, tiny tools).
DEFAULT_MIN_ACCESSES = 10_000

#: Stale ``*.tmp`` files older than this are swept on cache open;
#: younger ones may belong to a concurrent writer mid-store.
TMP_SWEEP_AGE_S = 300.0

#: Marker key of the optional metadata envelope around a stored value.
#: Every engine produces bit-identical replay objects (pinned by the
#: equivalence suite), so metadata is provenance only — it never enters
#: the cache key and :data:`CACHE_VERSION` is unaffected by it.
META_KEY = "__replay_cache_meta__"


def _wrap(value: Any, meta: Optional[dict]) -> Any:
    """Envelope a value with provenance metadata (no-op without meta)."""
    if not meta:
        return value
    return {META_KEY: dict(meta), "value": value}


def _split(obj: Any) -> Tuple[Any, dict]:
    """Undo :func:`_wrap`; pre-metadata entries yield empty metadata."""
    if isinstance(obj, dict) and META_KEY in obj:
        return obj["value"], obj[META_KEY]
    return obj, {}


def default_cache_dir() -> Path:
    """The configured cache directory (not created until first write)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "replay"


def cache_enabled() -> bool:
    """Whether the on-disk cache is enabled (``REPRO_REPLAY_CACHE``)."""
    return os.environ.get(CACHE_ENABLE_ENV, "1") != "0"


def cache_max_bytes() -> Optional[int]:
    """The configured size cap in bytes (``REPRO_CACHE_MAX_MB``), or
    None for unbounded (unset, empty, non-numeric or <= 0)."""
    raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace's columns (name excluded: it does not
    affect replay events)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np_bytes(trace.addresses))
    digest.update(np_bytes(trace.writes))
    digest.update(np_bytes(trace.thread_ids))
    digest.update(np_bytes(trace.gaps))
    return digest.hexdigest()


def np_bytes(array) -> bytes:
    """Raw bytes of an array (C-contiguous view)."""
    import numpy as np

    return np.ascontiguousarray(array).tobytes()


def private_arch_key(arch: ArchitectureConfig) -> tuple:
    """The architecture fields :func:`filter_private` depends on.

    Timing/energy constants are deliberately excluded so sensitivity
    sweeps over them reuse one private replay.
    """
    return (
        arch.n_cores,
        arch.l1d.capacity_bytes,
        arch.l1d.associativity,
        arch.l1d.block_bytes,
        arch.l2.capacity_bytes,
        arch.l2.associativity,
        arch.l2.block_bytes,
        arch.l2_next_line_prefetch,
    )


def llc_geometry_key(
    arch: ArchitectureConfig, capacity_bytes: int
) -> tuple:
    """The parameters :func:`simulate_llc` depends on beyond the stream."""
    return (
        capacity_bytes,
        arch.llc_associativity,
        arch.llc_block_bytes,
        arch.n_cores,
        arch.mlp_window_instructions,
        arch.max_mlp,
        arch.llc_replacement,
    )


def _key_digest(*parts: Any) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((CACHE_VERSION,) + parts).encode())
    return digest.hexdigest()


def _pack(value: Any) -> bytes:
    """Serialize a value into the checksummed container format."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    check = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return ENTRY_MAGIC + check + payload


def _unpack(blob: bytes) -> Any:
    """Verify and deserialize a container; raises ValueError on any
    damage (wrong magic, truncated header, checksum mismatch)."""
    header = len(ENTRY_MAGIC) + _DIGEST_SIZE
    if len(blob) < header or not blob.startswith(ENTRY_MAGIC):
        raise ValueError("not a cache entry container")
    check, payload = blob[len(ENTRY_MAGIC):header], blob[header:]
    if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != check:
        raise ValueError("cache entry checksum mismatch")
    return pickle.loads(payload)


class ReplayCache:
    """A content-addressed, checksummed pickle store for replay results.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.
    enabled:
        Force-enable/disable; defaults to :func:`cache_enabled`.
    min_accesses:
        Traces shorter than this skip the cache entirely.
    max_bytes:
        Size cap for LRU-by-mtime eviction; defaults to
        :func:`cache_max_bytes` (None = unbounded).
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: Optional[bool] = None,
        min_accesses: int = DEFAULT_MIN_ACCESSES,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.min_accesses = min_accesses
        self.max_bytes = cache_max_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.tmp_swept = 0
        #: Entry names this process wrote or hit — never evicted by it.
        self._live: set = set()
        if self.enabled:
            self.sweep_stale_tmp()

    # -- keys -------------------------------------------------------------

    def private_key(self, trace_fp: str, arch: ArchitectureConfig) -> str:
        """Cache key for a private-level replay."""
        return "private-" + _key_digest(trace_fp, private_arch_key(arch))

    def profile_key(
        self, trace_fp: str, arch: ArchitectureConfig, version: int
    ) -> str:
        """Cache key for an analytic stream-reuse profile.

        Keyed like :meth:`private_key` (the LLC stream derives
        deterministically from trace + private levels), plus the
        profile algorithm version
        (:data:`repro.prism.reuse.STREAM_PROFILE_VERSION`) so cached
        profiles never survive a surrogate-math change.
        """
        return "profile-" + _key_digest(
            trace_fp, private_arch_key(arch), ("stream-profile", int(version))
        )

    def llc_key(
        self, trace_fp: str, arch: ArchitectureConfig, capacity_bytes: int
    ) -> str:
        """Cache key for an LLC replay (stream derives deterministically
        from the trace + private-level architecture)."""
        return "llc-" + _key_digest(
            trace_fp, private_arch_key(arch), llc_geometry_key(arch, capacity_bytes)
        )

    # -- store ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Load a cached value, or None on miss/corruption.

        Corrupt entries (bad magic, checksum mismatch, unpicklable
        payload) are quarantined: deleted, counted, recomputed by the
        caller."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            _metrics.counter_add("replay_cache.misses")
            return None
        except OSError:
            self.misses += 1
            _metrics.counter_add("replay_cache.misses")
            return None
        try:
            value, _ = _split(_unpack(blob))
        except Exception:
            # Damaged container or unpicklable payload: a miss, and the
            # entry is removed so it cannot keep failing.
            self.misses += 1
            self.corrupt += 1
            _metrics.counter_add("replay_cache.misses")
            _metrics.counter_add("replay_cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._live.add(path.name)
        _metrics.counter_add("replay_cache.hits")
        _metrics.counter_add("replay_cache.bytes_read", len(blob))
        try:
            os.utime(path)  # LRU: a hit refreshes the entry's recency
        except OSError:
            pass
        return value

    def put(self, key: str, value: Any, meta: Optional[dict] = None) -> None:
        """Store a value atomically (concurrent-writer safe), then
        enforce the size cap if one is configured.

        ``meta`` attaches provenance (e.g. the producing engine) in an
        envelope around the value; it is invisible to :meth:`get` —
        which unwraps — and readable via :meth:`entry_meta`.
        """
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        blob = _pack(_wrap(value, meta))
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._live.add(self._path(key).name)
        _metrics.counter_add("replay_cache.stores")
        _metrics.counter_add("replay_cache.bytes_written", len(blob))
        self._enforce_cap()

    def entry_meta(self, key: str) -> Optional[dict]:
        """Provenance metadata of a stored entry, or None if absent.

        Pre-metadata entries (or entries stored without ``meta``) report
        ``{}``.  Reading metadata is side-effect free: no hit/miss
        counting, no recency touch.
        """
        if not self.enabled:
            return None
        try:
            _, meta = _split(_unpack(self._path(key).read_bytes()))
        except Exception:
            return None
        return meta

    # -- maintenance ------------------------------------------------------

    def sweep_stale_tmp(self, max_age_s: float = TMP_SWEEP_AGE_S) -> int:
        """Remove orphaned ``*.tmp`` files older than ``max_age_s``.

        A worker killed between ``tempfile.mkstemp`` and ``os.replace``
        leaves its temp file behind; nothing ever reads those, so any
        that have outlived a plausible in-flight store are garbage.
        Returns the number removed.
        """
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # raced with its writer or another sweeper
        if removed:
            self.tmp_swept += removed
            _metrics.counter_add("replay_cache.tmp_swept", removed)
        return removed

    def _entries_by_age(self) -> List[Tuple[float, int, Path]]:
        out = []
        for path in self.root.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((stat.st_mtime, stat.st_size, path))
        out.sort(key=lambda item: item[0])
        return out

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        Entries in this process's live set (written or hit here) are
        exempt, so the cap can be transiently exceeded rather than ever
        evicting a result a running sweep is about to reuse.
        """
        if self.max_bytes is None or not self.root.is_dir():
            return
        entries = self._entries_by_age()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path.name in self._live:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1
            _metrics.counter_add("replay_cache.evictions")
            _metrics.counter_add("replay_cache.evicted_bytes", size)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def total_bytes(self) -> int:
        """Total size of all entries currently on disk."""
        return sum(size for _, size, _ in self._entries_by_age())

    def stats(self) -> dict:
        """One JSON-ready snapshot of the cache's on-disk state.

        The shape ``repro-cli cache``, ``repro-cli serve``'s health
        endpoint and the doctor all render: root, enabled flag, entry
        count, total/capped bytes and orphaned temp files.
        """
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": self.entries(),
            "total_bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "tmp_files": (
                sum(1 for _ in self.root.glob("*.tmp"))
                if self.root.is_dir()
                else 0
            ),
        }

    def should_cache(self, trace: Trace) -> bool:
        """Whether a trace is worth caching (enabled + long enough)."""
        return self.enabled and len(trace) >= self.min_accesses


_default_cache: Optional[ReplayCache] = None


def default_cache() -> ReplayCache:
    """The process-wide cache instance (honours the env configuration
    current at first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = ReplayCache()
    return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide instance (tests re-point the env vars)."""
    global _default_cache
    _default_cache = None
