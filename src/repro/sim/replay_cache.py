"""Persistent on-disk cache for expensive replay results.

The two replay stages are pure functions of their inputs: a
:class:`~repro.sim.hierarchy.PrivateResult` depends only on the trace
contents and the private-level architecture (core count, L1/L2 geometry,
prefetch flag), and an :class:`~repro.sim.llc.LLCCounts` additionally on
the LLC geometry and MLP constants.  This module caches both on disk,
keyed by a content fingerprint, so repeated experiment runs, the
``benchmarks/`` suite and parallel workers all skip redundant replays.

Keys are *content-addressed*: the trace fingerprint hashes the raw
column bytes (not the generator seed), so any trace — synthetic, loaded
from a file, or hand-built — caches correctly, and regenerating the same
(workload, seed, length) trace in another process produces the same key.
The engine version is part of every key; bump :data:`CACHE_VERSION`
whenever replay semantics change to invalidate stale entries.

Configuration (environment):

- ``REPRO_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro/replay``).
- ``REPRO_REPLAY_CACHE`` — set to ``0`` to disable entirely.

Entries are pickle files written atomically (temp file + ``os.replace``),
so concurrent writers — e.g. the :mod:`repro.sim.parallel` worker pool —
never corrupt each other.  Traces shorter than ``min_accesses`` are not
cached: unit-test and hypothesis traces would otherwise litter the cache
with thousands of tiny files.

Invariants
----------

- A cache hit is indistinguishable from recomputation: values are the
  exact pickled :class:`~repro.sim.hierarchy.PrivateResult` /
  :class:`~repro.sim.llc.LLCCounts` objects the replay produced.
- Keys cover *every* input the replay depends on and nothing more:
  the trace content fingerprint (:func:`trace_fingerprint` over the raw
  column bytes), the private-geometry fields (:func:`private_arch_key`),
  the LLC-geometry fields (:func:`llc_geometry_key`), and
  :data:`CACHE_VERSION`.  Timing/energy constants are deliberately
  excluded — they are applied after replay.
- Unreadable entries are never fatal: any exception while loading is a
  miss (and, for corrupt-but-present files, an
  ``replay_cache.corrupt`` metric) followed by recomputation.

When run metrics are enabled (:mod:`repro.obs`), every probe and store
is counted (``replay_cache.hits`` / ``.misses`` / ``.corrupt`` /
``.stores``) along with bytes moved (``.bytes_read`` /
``.bytes_written``), which is what ``repro-experiments
metrics-summary`` turns into the cache hit-rate line.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.obs import metrics as _metrics
from repro.sim.config import ArchitectureConfig
from repro.trace.stream import Trace

#: Bump to invalidate all previously cached replays.
CACHE_VERSION = 1

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the cache ("0" disables).
CACHE_ENABLE_ENV = "REPRO_REPLAY_CACHE"

#: Traces shorter than this are never cached (tests, tiny tools).
DEFAULT_MIN_ACCESSES = 10_000


def default_cache_dir() -> Path:
    """The configured cache directory (not created until first write)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "replay"


def cache_enabled() -> bool:
    """Whether the on-disk cache is enabled (``REPRO_REPLAY_CACHE``)."""
    return os.environ.get(CACHE_ENABLE_ENV, "1") != "0"


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace's columns (name excluded: it does not
    affect replay events)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np_bytes(trace.addresses))
    digest.update(np_bytes(trace.writes))
    digest.update(np_bytes(trace.thread_ids))
    digest.update(np_bytes(trace.gaps))
    return digest.hexdigest()


def np_bytes(array) -> bytes:
    """Raw bytes of an array (C-contiguous view)."""
    import numpy as np

    return np.ascontiguousarray(array).tobytes()


def private_arch_key(arch: ArchitectureConfig) -> tuple:
    """The architecture fields :func:`filter_private` depends on.

    Timing/energy constants are deliberately excluded so sensitivity
    sweeps over them reuse one private replay.
    """
    return (
        arch.n_cores,
        arch.l1d.capacity_bytes,
        arch.l1d.associativity,
        arch.l1d.block_bytes,
        arch.l2.capacity_bytes,
        arch.l2.associativity,
        arch.l2.block_bytes,
        arch.l2_next_line_prefetch,
    )


def llc_geometry_key(
    arch: ArchitectureConfig, capacity_bytes: int
) -> tuple:
    """The parameters :func:`simulate_llc` depends on beyond the stream."""
    return (
        capacity_bytes,
        arch.llc_associativity,
        arch.llc_block_bytes,
        arch.n_cores,
        arch.mlp_window_instructions,
        arch.max_mlp,
        arch.llc_replacement,
    )


def _key_digest(*parts: Any) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((CACHE_VERSION,) + parts).encode())
    return digest.hexdigest()


class ReplayCache:
    """A content-addressed pickle store for replay results.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.
    enabled:
        Force-enable/disable; defaults to :func:`cache_enabled`.
    min_accesses:
        Traces shorter than this skip the cache entirely.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: Optional[bool] = None,
        min_accesses: int = DEFAULT_MIN_ACCESSES,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        self.min_accesses = min_accesses
        self.hits = 0
        self.misses = 0

    # -- keys -------------------------------------------------------------

    def private_key(self, trace_fp: str, arch: ArchitectureConfig) -> str:
        """Cache key for a private-level replay."""
        return "private-" + _key_digest(trace_fp, private_arch_key(arch))

    def llc_key(
        self, trace_fp: str, arch: ArchitectureConfig, capacity_bytes: int
    ) -> str:
        """Cache key for an LLC replay (stream derives deterministically
        from the trace + private-level architecture)."""
        return "llc-" + _key_digest(
            trace_fp, private_arch_key(arch), llc_geometry_key(arch, capacity_bytes)
        )

    # -- store ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Load a cached value, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
                n_bytes = handle.tell()
        except FileNotFoundError:
            self.misses += 1
            _metrics.counter_add("replay_cache.misses")
            return None
        except Exception:
            # Unpickling a truncated or corrupted entry can raise almost
            # anything (ValueError, UnpicklingError, ImportError, ...);
            # any unreadable entry is simply a miss to recompute.
            self.misses += 1
            _metrics.counter_add("replay_cache.misses")
            _metrics.counter_add("replay_cache.corrupt")
            return None
        self.hits += 1
        _metrics.counter_add("replay_cache.hits")
        _metrics.counter_add("replay_cache.bytes_read", n_bytes)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a value atomically (concurrent-writer safe)."""
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                n_bytes = handle.tell()
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _metrics.counter_add("replay_cache.stores")
        _metrics.counter_add("replay_cache.bytes_written", n_bytes)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def should_cache(self, trace: Trace) -> bool:
        """Whether a trace is worth caching (enabled + long enough)."""
        return self.enabled and len(trace) >= self.min_accesses


_default_cache: Optional[ReplayCache] = None


def default_cache() -> ReplayCache:
    """The process-wide cache instance (honours the env configuration
    current at first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = ReplayCache()
    return _default_cache


def reset_default_cache() -> None:
    """Forget the process-wide instance (tests re-point the env vars)."""
    global _default_cache
    _default_cache = None
