"""Simulation results and the paper's reported metrics.

The paper reports three per-workload metrics, each normalised to the
SRAM baseline: overall system *speedup*, *LLC total energy*, and
*ED^2P* (energy x delay^2).  :class:`SimResult` carries the raw values;
:func:`normalize` produces the paper's normalised triple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sim.energy import LLCEnergy
from repro.sim.llc import LLCCounts
from repro.sim.timing import SystemTiming


@dataclass(frozen=True)
class SimResult:
    """Complete outcome of simulating one workload on one LLC model."""

    workload: str
    llc_name: str
    configuration: str
    runtime_s: float
    energy: LLCEnergy
    counts: LLCCounts
    timing: SystemTiming
    total_instructions: int

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle across cores."""
        cycles = self.timing.runtime_cycles
        return self.total_instructions / cycles if cycles else 0.0

    @property
    def mpki(self) -> float:
        """LLC demand misses per kilo-instruction."""
        return self.counts.mpki(self.total_instructions)

    @property
    def llc_energy_j(self) -> float:
        """Total LLC energy (dynamic + leakage)."""
        return self.energy.total_j

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product, J*s^2."""
        return self.energy.total_j * self.runtime_s**2


@dataclass(frozen=True)
class NormalizedResult:
    """The paper's reported triple, normalised to a baseline run.

    ``speedup`` > 1 is faster than baseline; ``energy_ratio`` and
    ``ed2p_ratio`` < 1 are better than baseline.
    """

    workload: str
    llc_name: str
    configuration: str
    speedup: float
    energy_ratio: float
    ed2p_ratio: float


def normalize(result: SimResult, baseline: SimResult) -> NormalizedResult:
    """Normalise a result against the SRAM baseline run."""
    if result.workload != baseline.workload:
        raise SimulationError(
            "normalisation requires the same workload: "
            f"{result.workload!r} vs {baseline.workload!r}"
        )
    for label, value in (
        ("baseline runtime", baseline.runtime_s),
        ("baseline energy", baseline.energy.total_j),
    ):
        # `value <= 0` alone lets NaN through (NaN compares False) and a
        # NaN baseline would turn every ratio below into NaN silently.
        if not math.isfinite(value) or value <= 0:
            raise SimulationError(
                f"degenerate {label} for {baseline.workload!r}: {value!r}"
            )
    return NormalizedResult(
        workload=result.workload,
        llc_name=result.llc_name,
        configuration=result.configuration,
        speedup=baseline.runtime_s / result.runtime_s,
        energy_ratio=result.energy.total_j / baseline.energy.total_j,
        ed2p_ratio=result.ed2p / baseline.ed2p,
    )
