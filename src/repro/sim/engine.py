"""Fast batched cache-replay engine.

The reference simulators (:mod:`repro.sim.hierarchy`,
:mod:`repro.sim.llc`) spend ~95% of an experiment run in two pure-Python
per-access loops built on :class:`~repro.sim.cache.SetAssocCache`.  Each
access pays for numpy scalar indexing, a method dispatch, an
:class:`~repro.sim.cache.AccessOutcome` allocation and several dataclass
attribute updates — none of which change the simulated events.

This module replays the same streams through the same LRU semantics but
batched:

- trace columns are converted to plain Python lists once
  (``ndarray.tolist`` is a single C call) and everything derivable ahead
  of the loop — set indices, per-core instruction positions (a segmented
  cumulative sum), per-core access totals — is vectorized in numpy;
- cache sets are plain insertion-ordered dicts addressed through local
  variables, with LRU touch done as one ``dict.pop(key, sentinel)``
  plus re-insert instead of get/del/insert;
- the coherence directory is inlined as local dicts and integers
  (method calls and stats-dataclass updates dominate the multi-threaded
  path otherwise), and the single-threaded loop carries no coherence
  checks at all.

The engines are *bit-identical* by construction: every branch mirrors a
branch of ``SetAssocCache.access``/``fill``/``invalidate`` and
``FullMapDirectory.on_fill``/``on_evict`` (the property suite in
``tests/property/test_engine_equivalence.py`` enforces this on
randomized streams, including the prefetch ``fill`` and coherence
``invalidate`` paths).  Selection is via the ``engine=`` argument of
:func:`repro.sim.hierarchy.filter_private` /
:func:`repro.sim.llc.simulate_llc`, defaulting to the value of the
``REPRO_SIM_ENGINE`` environment variable (``fast`` when unset).

Invariants
----------

- **Bit-identical outputs.** For every trace and architecture, the fast
  and reference engines produce equal :class:`~repro.sim.hierarchy.PrivateResult`
  and :class:`~repro.sim.llc.LLCCounts` — same event counts, same LLC
  stream, same directory statistics, in the same order.  Any divergence
  is a bug; bump :data:`repro.sim.replay_cache.CACHE_VERSION` whenever
  replay semantics intentionally change.
- **LRU only.** The fast LLC path implements LRU; non-LRU policies are
  always routed to the reference loop by the dispatcher.
- **No per-access observability.** The engine loops carry no metrics
  hooks — instrumentation lives in the dispatchers
  (:func:`~repro.sim.hierarchy.filter_private`,
  :func:`~repro.sim.llc.simulate_llc`), which record the already-computed
  totals after the loop, so enabling :mod:`repro.obs` never slows the
  hot path.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.config import ArchitectureConfig
from repro.sim.directory import FullMapDirectory
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace

#: Engine names accepted by the ``engine=`` switches.
ENGINES = ("fast", "reference")

#: Environment variable overriding the default engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: Sentinel distinguishing "absent" from a stored False dirty flag.
_MISS = object()


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``None`` falls back to ``$REPRO_SIM_ENGINE``, then to ``"fast"``.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "fast"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    return engine


def _check_geometry(capacity_bytes: int, block_bytes: int, associativity: int) -> int:
    """Validate geometry exactly like ``SetAssocCache``; returns n_sets."""
    if capacity_bytes % (block_bytes * associativity):
        raise ConfigurationError("capacity must be a whole number of sets")
    n_sets = capacity_bytes // (block_bytes * associativity)
    if n_sets <= 0:
        raise ConfigurationError("cache must have at least one set")
    return n_sets


def _per_core_positions(core_ids: np.ndarray, gaps: np.ndarray, n_cores: int):
    """Vectorized per-core instruction positions.

    Equivalent to ``counter.instructions += gap + 1; ipos =
    counter.instructions`` per access: a cumulative sum of ``gap + 1``
    segmented by issuing core.  Returns the position array and the final
    instruction total per core.
    """
    totals = gaps.astype(np.int64) + 1
    positions = np.empty(len(core_ids), dtype=np.int64)
    final = [0] * n_cores
    for core in range(n_cores):
        mask = core_ids == core
        if mask.any():
            cum = np.cumsum(totals[mask])
            positions[mask] = cum
            final[core] = int(cum[-1])
    return positions, final


def simulate_llc_fast(
    stream,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
    mlp_window: int = 128,
    mlp_ceiling: float = 6.0,
):
    """Batched LRU replay of an LLC stream.

    Mirrors :func:`repro.sim.llc.simulate_llc` with ``policy="lru"``;
    returns an identical :class:`~repro.sim.llc.LLCCounts`.
    """
    from repro.sim.llc import LLCCounts, estimate_mlp

    n_sets = _check_geometry(capacity_bytes, block_bytes, associativity)
    sets: List[dict] = [dict() for _ in range(n_sets)]
    assoc = associativity
    miss = _MISS

    blocks, writes, cores, positions = stream.columns()
    set_idx = (stream.blocks % np.uint64(n_sets)).tolist()

    read_hits = read_misses = 0
    write_hits = write_misses = 0
    dirty_evictions = 0
    per_core_hits = [0] * n_cores
    per_core_misses = [0] * n_cores
    miss_positions: List[List[int]] = [[] for _ in range(n_cores)]

    for block, is_write, core, pos, index in zip(
        blocks, writes, cores, positions, set_idx
    ):
        lines = sets[index]
        dirty = lines.pop(block, miss)
        if is_write:
            if dirty is not miss:
                # Hit: refresh to MRU, mark dirty.
                lines[block] = True
                write_hits += 1
            else:
                write_misses += 1
                if len(lines) >= assoc:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        dirty_evictions += 1
                lines[block] = True
        else:
            if dirty is not miss:
                lines[block] = dirty
                read_hits += 1
                per_core_hits[core] += 1
            else:
                read_misses += 1
                per_core_misses[core] += 1
                miss_positions[core].append(pos)
                if len(lines) >= assoc:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        dirty_evictions += 1
                lines[block] = False

    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    counts.read_hits = read_hits
    counts.read_misses = read_misses
    counts.read_lookups = read_hits + read_misses
    counts.write_hits = write_hits
    counts.write_misses = write_misses
    counts.write_accesses = write_hits + write_misses
    counts.dirty_evictions = dirty_evictions
    counts.per_core_read_hits = per_core_hits
    counts.per_core_read_misses = per_core_misses
    counts.per_core_mlp = [
        estimate_mlp(np.array(p, dtype=np.uint64), mlp_window, mlp_ceiling)
        for p in miss_positions
    ]
    return counts


def filter_private_fast(trace: Trace, arch: ArchitectureConfig):
    """Batched replay of a trace through the per-core L1D/L2 levels.

    Mirrors :func:`repro.sim.hierarchy.filter_private` event-for-event:
    identical LLC stream, per-core counters and directory statistics.
    """
    from repro.sim.hierarchy import CoreCounters, LLCStream, PrivateResult

    n_cores = arch.n_cores
    l1_nsets = _check_geometry(
        arch.l1d.capacity_bytes, arch.l1d.block_bytes, arch.l1d.associativity
    )
    l2_nsets = _check_geometry(
        arch.l2.capacity_bytes, arch.l2.block_bytes, arch.l2.associativity
    )
    l1_assoc = arch.l1d.associativity
    l2_assoc = arch.l2.associativity
    prefetch = arch.l2_next_line_prefetch
    miss = _MISS

    l1_sets: List[List[dict]] = [
        [dict() for _ in range(l1_nsets)] for _ in range(n_cores)
    ]
    l2_sets: List[List[dict]] = [
        [dict() for _ in range(l2_nsets)] for _ in range(n_cores)
    ]

    l1_hits = [0] * n_cores
    l1_misses = [0] * n_cores
    l2_hits = [0] * n_cores
    l2_misses = [0] * n_cores

    n_threads = max(1, trace.n_threads)
    use_directory = n_threads > 1

    out_blocks: List[int] = []
    out_writes: List[bool] = []
    out_cores: List[int] = []
    out_ipos: List[int] = []
    emit_block = out_blocks.append
    emit_write = out_writes.append
    emit_core = out_cores.append
    emit_ipos = out_ipos.append

    block_arr = trace.addresses >> np.uint64(BLOCK_BITS)
    core_arr = trace.thread_ids.astype(np.int64) % n_cores
    position_arr, instructions = _per_core_positions(core_arr, trace.gaps, n_cores)
    accesses = np.bincount(core_arr, minlength=n_cores).tolist()

    blocks = block_arr.tolist()
    writes = trace.writes.tolist()
    core_ids = core_arr.tolist()
    ipos_list = position_arr.tolist()
    l1_idx = (block_arr % np.uint64(l1_nsets)).tolist()
    l2_idx = (block_arr % np.uint64(l2_nsets)).tolist()

    # Directory state, inlined from FullMapDirectory (method-call and
    # stats-dataclass overhead is significant on the coherence path).
    # ``sharers_map`` stores a bare core id while a block has exactly one
    # sharer — the overwhelmingly common case — and only upgrades to a
    # set when a second core joins.
    sharers_map: dict = {}
    owner_map: dict = {}
    invalidations_sent = downgrades_sent = sharing_misses = 0

    if not use_directory:
        # Single-threaded loop: no coherence bookkeeping at all.
        for block, is_write, core, ipos, i1, i2 in zip(
            blocks, writes, core_ids, ipos_list, l1_idx, l2_idx
        ):
            lines1 = l1_sets[core][i1]
            dirty1 = lines1.pop(block, miss)
            if dirty1 is not miss:
                # L1 hit: refresh to MRU.
                lines1[block] = dirty1 or is_write
                l1_hits[core] += 1
                continue

            l1_misses[core] += 1
            l1_victim = None
            if len(lines1) >= l1_assoc:
                victim_tag = next(iter(lines1))
                if lines1.pop(victim_tag):
                    l1_victim = victim_tag
            lines1[block] = is_write

            core_l2 = l2_sets[core]
            if l1_victim is not None:
                # L1 dirty eviction drops into the private L2 (fill path).
                lines2 = core_l2[l1_victim % l2_nsets]
                if lines2.pop(l1_victim, miss) is miss and len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                lines2[l1_victim] = True

            lines2 = core_l2[i2]
            dirty2 = lines2.pop(block, miss)
            if dirty2 is not miss:
                # L2 hit (demand accesses reach L2 as reads).
                lines2[block] = dirty2
                l2_hits[core] += 1
                continue
            l2_misses[core] += 1
            if len(lines2) >= l2_assoc:
                victim_tag = next(iter(lines2))
                if lines2.pop(victim_tag):
                    emit_block(victim_tag)
                    emit_write(True)
                    emit_core(core)
                    emit_ipos(ipos)
            lines2[block] = False
            emit_block(block)
            emit_write(False)
            emit_core(core)
            emit_ipos(ipos)
            if prefetch:
                next_block = block + 1
                lines2n = core_l2[next_block % l2_nsets]
                if next_block not in lines2n:
                    if len(lines2n) >= l2_assoc:
                        victim_tag = next(iter(lines2n))
                        if lines2n.pop(victim_tag):
                            emit_block(victim_tag)
                            emit_write(True)
                            emit_core(core)
                            emit_ipos(ipos)
                    lines2n[next_block] = False
                    emit_block(next_block)
                    emit_write(False)
                    emit_core(core)
                    emit_ipos(ipos)
    else:
        for block, is_write, core, ipos, i1, i2 in zip(
            blocks, writes, core_ids, ipos_list, l1_idx, l2_idx
        ):
            lines1 = l1_sets[core][i1]
            dirty1 = lines1.pop(block, miss)
            if dirty1 is not miss:
                # L1 hit: refresh to MRU.
                lines1[block] = dirty1 or is_write
                l1_hits[core] += 1
                if is_write:
                    # Exclusive directory fill: invalidate remote copies.
                    sharers = sharers_map.get(block)
                    owner_map[block] = core
                    if sharers is None:
                        sharers_map[block] = core
                    elif type(sharers) is int:
                        if sharers != core:
                            sharers_map[block] = core
                            invalidations_sent += 1
                            sharing_misses += 1
                            invalid1 = l1_sets[sharers][i1].pop(block, None)
                            invalid2 = l2_sets[sharers][i2].pop(block, None)
                            if invalid1 or invalid2:
                                emit_block(block)
                                emit_write(True)
                                emit_core(sharers)
                                emit_ipos(ipos)
                    else:
                        victims = [c for c in sharers if c != core]
                        sharers_map[block] = core
                        if victims:
                            invalidations_sent += len(victims)
                            sharing_misses += 1
                            for victim_core in victims:
                                invalid1 = l1_sets[victim_core][i1].pop(block, None)
                                invalid2 = l2_sets[victim_core][i2].pop(block, None)
                                if invalid1 or invalid2:
                                    emit_block(block)
                                    emit_write(True)
                                    emit_core(victim_core)
                                    emit_ipos(ipos)
                continue

            l1_misses[core] += 1
            l1_victim = None
            if len(lines1) >= l1_assoc:
                victim_tag = next(iter(lines1))
                if lines1.pop(victim_tag):
                    l1_victim = victim_tag
            lines1[block] = is_write

            core_l2 = l2_sets[core]
            if l1_victim is not None:
                # L1 dirty eviction drops into the private L2 (fill path).
                lines2 = core_l2[l1_victim % l2_nsets]
                if lines2.pop(l1_victim, miss) is miss and len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                        # Directory eviction notice.
                        sharers = sharers_map.get(victim_tag)
                        if sharers is not None:
                            if type(sharers) is int:
                                if sharers == core:
                                    del sharers_map[victim_tag]
                            else:
                                sharers.discard(core)
                                if not sharers:
                                    del sharers_map[victim_tag]
                        if owner_map.get(victim_tag) == core:
                            del owner_map[victim_tag]
                lines2[l1_victim] = True

            lines2 = core_l2[i2]
            dirty2 = lines2.pop(block, miss)
            if dirty2 is not miss:
                # L2 hit (demand accesses reach L2 as reads).
                lines2[block] = dirty2
                l2_hits[core] += 1
            else:
                l2_misses[core] += 1
                if len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                        sharers = sharers_map.get(victim_tag)
                        if sharers is not None:
                            if type(sharers) is int:
                                if sharers == core:
                                    del sharers_map[victim_tag]
                            else:
                                sharers.discard(core)
                                if not sharers:
                                    del sharers_map[victim_tag]
                        if owner_map.get(victim_tag) == core:
                            del owner_map[victim_tag]
                lines2[block] = False
                emit_block(block)
                emit_write(False)
                emit_core(core)
                emit_ipos(ipos)
                if prefetch:
                    next_block = block + 1
                    lines2n = core_l2[next_block % l2_nsets]
                    if next_block not in lines2n:
                        if len(lines2n) >= l2_assoc:
                            victim_tag = next(iter(lines2n))
                            if lines2n.pop(victim_tag):
                                emit_block(victim_tag)
                                emit_write(True)
                                emit_core(core)
                                emit_ipos(ipos)
                                sharers = sharers_map.get(victim_tag)
                                if sharers is not None:
                                    if type(sharers) is int:
                                        if sharers == core:
                                            del sharers_map[victim_tag]
                                    else:
                                        sharers.discard(core)
                                        if not sharers:
                                            del sharers_map[victim_tag]
                                if owner_map.get(victim_tag) == core:
                                    del owner_map[victim_tag]
                        lines2n[next_block] = False
                        emit_block(next_block)
                        emit_write(False)
                        emit_core(core)
                        emit_ipos(ipos)

            # Directory fill for the demand block.
            if is_write:
                sharers = sharers_map.get(block)
                owner_map[block] = core
                if sharers is None:
                    sharers_map[block] = core
                elif type(sharers) is int:
                    if sharers != core:
                        sharers_map[block] = core
                        invalidations_sent += 1
                        sharing_misses += 1
                        invalid1 = l1_sets[sharers][i1].pop(block, None)
                        invalid2 = l2_sets[sharers][i2].pop(block, None)
                        if invalid1 or invalid2:
                            emit_block(block)
                            emit_write(True)
                            emit_core(sharers)
                            emit_ipos(ipos)
                else:
                    victims = [c for c in sharers if c != core]
                    sharers_map[block] = core
                    if victims:
                        invalidations_sent += len(victims)
                        sharing_misses += 1
                        for victim_core in victims:
                            invalid1 = l1_sets[victim_core][i1].pop(block, None)
                            invalid2 = l2_sets[victim_core][i2].pop(block, None)
                            if invalid1 or invalid2:
                                emit_block(block)
                                emit_write(True)
                                emit_core(victim_core)
                                emit_ipos(ipos)
            else:
                owner = owner_map.get(block)
                if owner is not None and owner != core:
                    downgrades_sent += 1
                    del owner_map[block]
                    invalid1 = l1_sets[owner][i1].pop(block, None)
                    invalid2 = l2_sets[owner][i2].pop(block, None)
                    if invalid1 or invalid2:
                        emit_block(block)
                        emit_write(True)
                        emit_core(owner)
                        emit_ipos(ipos)
                sharers = sharers_map.get(block)
                if sharers is None:
                    sharers_map[block] = core
                elif type(sharers) is int:
                    if sharers != core:
                        sharers_map[block] = {sharers, core}
                else:
                    sharers.add(core)

    directory = FullMapDirectory(n_cores)
    directory.stats.invalidations_sent = invalidations_sent
    directory.stats.downgrades_sent = downgrades_sent
    directory.stats.sharing_misses = sharing_misses

    stream = LLCStream(
        blocks=np.array(out_blocks, dtype=np.uint64),
        writes=np.array(out_writes, dtype=bool),
        cores=np.array(out_cores, dtype=np.uint16),
        instr_positions=np.array(out_ipos, dtype=np.uint64),
    )
    counters = [
        CoreCounters(
            instructions=instructions[core],
            accesses=int(accesses[core]),
            l1_hits=l1_hits[core],
            l1_misses=l1_misses[core],
            l2_hits=l2_hits[core],
            l2_misses=l2_misses[core],
        )
        for core in range(n_cores)
    ]
    return PrivateResult(
        stream=stream,
        per_core=counters,
        directory=directory.stats,
        n_threads=n_threads,
    )
