"""Fast batched and vectorized cache-replay engines.

The reference simulators (:mod:`repro.sim.hierarchy`,
:mod:`repro.sim.llc`) spend ~95% of an experiment run in two pure-Python
per-access loops built on :class:`~repro.sim.cache.SetAssocCache`.  Each
access pays for numpy scalar indexing, a method dispatch, an
:class:`~repro.sim.cache.AccessOutcome` allocation and several dataclass
attribute updates — none of which change the simulated events.

Three engines share one contract (bit-identical events):

- ``reference`` — the dict-of-caches per-access loops, any replacement
  policy; the semantic ground truth.
- ``fast`` — the batched flat loops below (3–5x): plain Python dicts,
  inlined coherence, vectorized preprocessing.
- ``vector`` — whole-trace numpy LLC replay
  (:func:`simulate_llc_vector`, ~10–18x over reference on the LLC
  replay): accesses are grouped by set index once and resolved in
  *rounds* — round ``t`` replays the ``t``-th access of every set
  simultaneously with array-based tag matching and an age-based LRU
  stack, so the Python-level loop runs ``max accesses-per-set`` times
  instead of once per access.  The private hierarchy under ``vector``
  routes to the ``fast`` loop (its L1/L2/coherence interplay is
  control-flow-bound, not replay-bound), so ``vector`` is a strict
  superset of ``fast`` in speed and identical in output.

The ``fast`` engine replays the same streams through the same LRU
semantics but batched:

- trace columns are converted to plain Python lists once
  (``ndarray.tolist`` is a single C call) and everything derivable ahead
  of the loop — set indices, per-core instruction positions (a segmented
  cumulative sum), per-core access totals — is vectorized in numpy;
- cache sets are plain insertion-ordered dicts addressed through local
  variables, with LRU touch done as one ``dict.pop(key, sentinel)``
  plus re-insert instead of get/del/insert;
- the coherence directory is inlined as local dicts and integers
  (method calls and stats-dataclass updates dominate the multi-threaded
  path otherwise), and the single-threaded loop carries no coherence
  checks at all.

The engines are *bit-identical* by construction: every branch mirrors a
branch of ``SetAssocCache.access``/``fill``/``invalidate`` and
``FullMapDirectory.on_fill``/``on_evict`` (the property suite in
``tests/property/test_engine_equivalence.py`` enforces this on
randomized streams, including the prefetch ``fill`` and coherence
``invalidate`` paths).  Selection is via the ``engine=`` argument of
:func:`repro.sim.hierarchy.filter_private` /
:func:`repro.sim.llc.simulate_llc`, defaulting to the value of the
``REPRO_SIM_ENGINE`` environment variable (``fast`` when unset).

Invariants
----------

- **Bit-identical outputs.** For every trace and architecture, the fast
  and reference engines produce equal :class:`~repro.sim.hierarchy.PrivateResult`
  and :class:`~repro.sim.llc.LLCCounts` — same event counts, same LLC
  stream, same directory statistics, in the same order.  Any divergence
  is a bug; bump :data:`repro.sim.replay_cache.CACHE_VERSION` whenever
  replay semantics intentionally change.
- **LRU only.** The fast LLC path implements LRU; non-LRU policies are
  always routed to the reference loop by the dispatcher.
- **No per-access observability.** The engine loops carry no metrics
  hooks — instrumentation lives in the dispatchers
  (:func:`~repro.sim.hierarchy.filter_private`,
  :func:`~repro.sim.llc.simulate_llc`), which record the already-computed
  totals after the loop, so enabling :mod:`repro.obs` never slows the
  hot path.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.config import ArchitectureConfig
from repro.sim.directory import FullMapDirectory
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace

#: Engine names accepted by the ``engine=`` switches.
ENGINES = ("fast", "reference", "vector")

#: Environment variable overriding the default engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: Sentinel distinguishing "absent" from a stored False dirty flag.
_MISS = object()


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``None`` falls back to ``$REPRO_SIM_ENGINE``, then to ``"fast"``.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "fast"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    return engine


def _check_geometry(capacity_bytes: int, block_bytes: int, associativity: int) -> int:
    """Validate geometry exactly like ``SetAssocCache``; returns n_sets."""
    if capacity_bytes % (block_bytes * associativity):
        raise ConfigurationError("capacity must be a whole number of sets")
    n_sets = capacity_bytes // (block_bytes * associativity)
    if n_sets <= 0:
        raise ConfigurationError("cache must have at least one set")
    return n_sets


def _per_core_positions(core_ids: np.ndarray, gaps: np.ndarray, n_cores: int):
    """Vectorized per-core instruction positions.

    Equivalent to ``counter.instructions += gap + 1; ipos =
    counter.instructions`` per access: a cumulative sum of ``gap + 1``
    segmented by issuing core.  Returns the position array and the final
    instruction total per core.
    """
    totals = gaps.astype(np.int64) + 1
    positions = np.empty(len(core_ids), dtype=np.int64)
    final = [0] * n_cores
    for core in range(n_cores):
        mask = core_ids == core
        if mask.any():
            cum = np.cumsum(totals[mask])
            positions[mask] = cum
            final[core] = int(cum[-1])
    return positions, final


def simulate_llc_fast(
    stream,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
    mlp_window: int = 128,
    mlp_ceiling: float = 6.0,
):
    """Batched LRU replay of an LLC stream.

    Mirrors :func:`repro.sim.llc.simulate_llc` with ``policy="lru"``;
    returns an identical :class:`~repro.sim.llc.LLCCounts`.
    """
    from repro.sim.llc import LLCCounts, estimate_mlp

    n_sets = _check_geometry(capacity_bytes, block_bytes, associativity)
    sets: List[dict] = [dict() for _ in range(n_sets)]
    assoc = associativity
    miss = _MISS

    blocks, writes, cores, positions = stream.columns()
    set_idx = (stream.blocks % np.uint64(n_sets)).tolist()

    read_hits = read_misses = 0
    write_hits = write_misses = 0
    dirty_evictions = 0
    per_core_hits = [0] * n_cores
    per_core_misses = [0] * n_cores
    miss_positions: List[List[int]] = [[] for _ in range(n_cores)]

    for block, is_write, core, pos, index in zip(
        blocks, writes, cores, positions, set_idx
    ):
        lines = sets[index]
        dirty = lines.pop(block, miss)
        if is_write:
            if dirty is not miss:
                # Hit: refresh to MRU, mark dirty.
                lines[block] = True
                write_hits += 1
            else:
                write_misses += 1
                if len(lines) >= assoc:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        dirty_evictions += 1
                lines[block] = True
        else:
            if dirty is not miss:
                lines[block] = dirty
                read_hits += 1
                per_core_hits[core] += 1
            else:
                read_misses += 1
                per_core_misses[core] += 1
                miss_positions[core].append(pos)
                if len(lines) >= assoc:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        dirty_evictions += 1
                lines[block] = False

    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    counts.read_hits = read_hits
    counts.read_misses = read_misses
    counts.read_lookups = read_hits + read_misses
    counts.write_hits = write_hits
    counts.write_misses = write_misses
    counts.write_accesses = write_hits + write_misses
    counts.dirty_evictions = dirty_evictions
    counts.per_core_read_hits = per_core_hits
    counts.per_core_read_misses = per_core_misses
    counts.per_core_mlp = [
        estimate_mlp(np.array(p, dtype=np.uint64), mlp_window, mlp_ceiling)
        for p in miss_positions
    ]
    return counts


#: Empty-way tag sentinel for the vector engine's tag array.  Block
#: addresses are byte addresses shifted right by ``BLOCK_BITS``, so a
#: real block can never reach the top bit of a uint64; any stream that
#: somehow does (hand-built arrays) is routed to the fast loop instead.
_VECTOR_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


def simulate_llc_vector(
    stream,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
    mlp_window: int = 128,
    mlp_ceiling: float = 6.0,
):
    """Whole-trace vectorized LRU replay of an LLC stream.

    Mirrors :func:`repro.sim.llc.simulate_llc` with ``policy="lru"``;
    returns an identical :class:`~repro.sim.llc.LLCCounts` to both
    other engines (the property suite pins this).

    Algorithm — *rounds lockstep over sets*:

    1. Group accesses by set index and rank sets by descending access
       count, so the sets still active in round ``t`` (those with more
       than ``t`` accesses) are exactly state rows ``[0, k_t)``.
    2. Build the round-major permutation (sort by occurrence-index,
       then set rank) with **one** stable sort: after sorting by set
       rank, the destination of the ``j``-th access of the ``i``-th
       busiest set is ``offsets[j] + i`` — pure arithmetic.
    3. Replay round by round on flat state arrays ``tags`` / ``dirty``
       / ``age`` of shape ``(n_rows * assoc,)``.  A hit is a tag match
       (each block occupies at most one way); the LRU victim is
       ``argmin(age)`` — empty ways carry age 0 and fill lowest-index
       first, exactly the dict engines' install order, and evicting an
       empty way is indistinguishable from installing into it because
       the sentinel way is never dirty.
    4. Scatter per-round hit/eviction flags back to stream order and
       derive every :class:`~repro.sim.llc.LLCCounts` field — including
       per-core splits and MLP miss positions, which depend only on
       stream-ordered outcome flags — with bincounts and masks.

    The per-access work is ``O(assoc)`` like the dict engines, but the
    interpreter loop runs ``max accesses-per-set`` times (tens) instead
    of once per access (tens of thousands).
    """
    from repro.sim.llc import LLCCounts, estimate_mlp

    n_sets = _check_geometry(capacity_bytes, block_bytes, associativity)
    assoc = associativity
    blocks = np.ascontiguousarray(stream.blocks, dtype=np.uint64)
    writes = np.ascontiguousarray(stream.writes, dtype=bool)
    n = len(blocks)

    if n and int(blocks.max()) >= 1 << 63:
        # A "block" colliding with the sentinel tag space cannot come
        # from a real trace (addresses >> BLOCK_BITS); fall back to the
        # bit-identical fast loop rather than mis-simulate.
        return simulate_llc_fast(
            stream,
            capacity_bytes,
            associativity=associativity,
            block_bytes=block_bytes,
            n_cores=n_cores,
            mlp_window=mlp_window,
            mlp_ceiling=mlp_ceiling,
        )

    hit_out = np.zeros(n, dtype=bool)
    evict_out = np.zeros(n, dtype=bool)

    if n:
        set_idx = (blocks % np.uint64(n_sets)).astype(np.int64)
        if n_sets <= 2 * n:
            # Dense: one state row per set, occupancy from bincount.
            set_counts = np.bincount(set_idx, minlength=n_sets)
            set_cid = set_idx
            n_rows = n_sets
        else:
            # Sparse (huge cache, short stream): compact to touched sets
            # so state stays O(accesses), not O(cache).
            sets_u, set_cid, set_counts = np.unique(
                set_idx, return_inverse=True, return_counts=True
            )
            n_rows = len(sets_u)

        # Rank sets by descending access count so round t's active rows
        # are exactly the contiguous slice [0, k_t).
        max_count = int(set_counts.max())
        if max_count <= np.iinfo(np.uint16).max:
            rank_key = (max_count - set_counts).astype(np.uint16)
        else:
            rank_key = -set_counts
        rank_order = np.argsort(rank_key, kind="stable")
        rank = np.empty(n_rows, dtype=np.int64)
        rank[rank_order] = np.arange(n_rows)
        counts_desc = set_counts[rank_order]
        row = rank[set_cid]
        max_m = int(counts_desc[0])
        # k_per_round[t] = number of sets with more than t accesses.
        k_per_round = np.searchsorted(
            -counts_desc, -np.arange(max_m), side="left"
        )
        offsets = np.r_[0, np.cumsum(k_per_round)]

        # Round-major permutation via one stable sort by set rank: the
        # j-th access of the i-th busiest set lands at offsets[j] + i.
        if n_rows <= np.iinfo(np.uint16).max:
            sort_key = row.astype(np.uint16)
        else:
            sort_key = row.astype(np.uint32)
        order = np.argsort(sort_key, kind="stable")
        n_active = int(np.count_nonzero(counts_desc))
        active_counts = counts_desc[:n_active]
        group_starts = np.r_[0, np.cumsum(active_counts[:-1])]
        pos_sorted = np.arange(n, dtype=np.int64) - np.repeat(
            group_starts, active_counts
        )
        row_sorted = np.repeat(np.arange(n_active, dtype=np.int64), active_counts)
        dest = offsets[pos_sorted] + row_sorted
        perm = np.empty(n, dtype=np.int64)
        perm[dest] = order
        bs = blocks[perm]
        ws = writes[perm]

        # Flat per-way state, row-major (n_rows, assoc).
        tags = np.full(n_rows * assoc, _VECTOR_SENTINEL)
        dirty = np.zeros(n_rows * assoc, dtype=bool)
        age = np.zeros(n_rows * assoc, dtype=np.uint32)
        tags2 = tags.reshape(n_rows, assoc)
        age2 = age.reshape(n_rows, assoc)
        row_base = np.arange(n_rows, dtype=np.int64) * assoc

        hit_flat = np.empty(n, dtype=bool)
        evict_flat = np.empty(n, dtype=bool)

        # Round 0: every set is empty — guaranteed miss into way 0.
        k0 = int(k_per_round[0])
        hit_flat[:k0] = False
        evict_flat[:k0] = False
        tags2[:k0, 0] = bs[:k0]
        dirty[row_base[:k0]] = ws[:k0]
        age[row_base[:k0]] = 1

        for t in range(1, max_m):
            k = int(k_per_round[t])
            lo, hi = int(offsets[t]), int(offsets[t + 1])
            b = bs[lo:hi]
            hitm = tags2[:k] == b[:, None]
            way = hitm.argmax(axis=1)
            hit = tags[row_base[:k] + way] == b
            victim = age2[:k].argmin(axis=1)
            flat = row_base[:k] + np.where(hit, way, victim)
            old_d = dirty[flat]
            hit_flat[lo:hi] = hit
            evict_flat[lo:hi] = ~hit & old_d
            tags[flat] = b
            dirty[flat] = (hit & old_d) | ws[lo:hi]
            age[flat] = t + 1

        hit_out[perm] = hit_flat
        evict_out[perm] = evict_flat

    reads = ~writes
    read_hit = hit_out & reads
    read_miss = ~hit_out & reads
    cores = np.asarray(stream.cores, dtype=np.int64)
    positions = np.asarray(stream.instr_positions)

    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    counts.read_hits = int(read_hit.sum())
    counts.read_misses = int(read_miss.sum())
    counts.read_lookups = counts.read_hits + counts.read_misses
    counts.write_hits = int((hit_out & writes).sum())
    counts.write_misses = int((~hit_out & writes).sum())
    counts.write_accesses = counts.write_hits + counts.write_misses
    counts.dirty_evictions = int(evict_out.sum())
    counts.per_core_read_hits = np.bincount(
        cores[read_hit], minlength=n_cores
    ).tolist()
    counts.per_core_read_misses = np.bincount(
        cores[read_miss], minlength=n_cores
    ).tolist()
    counts.per_core_mlp = [
        estimate_mlp(
            positions[read_miss & (cores == c)].astype(np.uint64),
            mlp_window,
            mlp_ceiling,
        )
        for c in range(n_cores)
    ]
    return counts


def filter_private_fast(trace: Trace, arch: ArchitectureConfig):
    """Batched replay of a trace through the per-core L1D/L2 levels.

    Mirrors :func:`repro.sim.hierarchy.filter_private` event-for-event:
    identical LLC stream, per-core counters and directory statistics.
    """
    from repro.sim.hierarchy import CoreCounters, LLCStream, PrivateResult

    n_cores = arch.n_cores
    l1_nsets = _check_geometry(
        arch.l1d.capacity_bytes, arch.l1d.block_bytes, arch.l1d.associativity
    )
    l2_nsets = _check_geometry(
        arch.l2.capacity_bytes, arch.l2.block_bytes, arch.l2.associativity
    )
    l1_assoc = arch.l1d.associativity
    l2_assoc = arch.l2.associativity
    prefetch = arch.l2_next_line_prefetch
    miss = _MISS

    l1_sets: List[List[dict]] = [
        [dict() for _ in range(l1_nsets)] for _ in range(n_cores)
    ]
    l2_sets: List[List[dict]] = [
        [dict() for _ in range(l2_nsets)] for _ in range(n_cores)
    ]

    l1_hits = [0] * n_cores
    l1_misses = [0] * n_cores
    l2_hits = [0] * n_cores
    l2_misses = [0] * n_cores

    n_threads = max(1, trace.n_threads)
    use_directory = n_threads > 1

    out_blocks: List[int] = []
    out_writes: List[bool] = []
    out_cores: List[int] = []
    out_ipos: List[int] = []
    emit_block = out_blocks.append
    emit_write = out_writes.append
    emit_core = out_cores.append
    emit_ipos = out_ipos.append

    block_arr = trace.addresses >> np.uint64(BLOCK_BITS)
    core_arr = trace.thread_ids.astype(np.int64) % n_cores
    position_arr, instructions = _per_core_positions(core_arr, trace.gaps, n_cores)
    accesses = np.bincount(core_arr, minlength=n_cores).tolist()

    blocks = block_arr.tolist()
    writes = trace.writes.tolist()
    core_ids = core_arr.tolist()
    ipos_list = position_arr.tolist()
    l1_idx = (block_arr % np.uint64(l1_nsets)).tolist()
    l2_idx = (block_arr % np.uint64(l2_nsets)).tolist()

    # Directory state, inlined from FullMapDirectory (method-call and
    # stats-dataclass overhead is significant on the coherence path).
    # ``sharers_map`` stores a bare core id while a block has exactly one
    # sharer — the overwhelmingly common case — and only upgrades to a
    # set when a second core joins.
    sharers_map: dict = {}
    owner_map: dict = {}
    invalidations_sent = downgrades_sent = sharing_misses = 0

    if not use_directory:
        # Single-threaded loop: no coherence bookkeeping at all.
        for block, is_write, core, ipos, i1, i2 in zip(
            blocks, writes, core_ids, ipos_list, l1_idx, l2_idx
        ):
            lines1 = l1_sets[core][i1]
            dirty1 = lines1.pop(block, miss)
            if dirty1 is not miss:
                # L1 hit: refresh to MRU.
                lines1[block] = dirty1 or is_write
                l1_hits[core] += 1
                continue

            l1_misses[core] += 1
            l1_victim = None
            if len(lines1) >= l1_assoc:
                victim_tag = next(iter(lines1))
                if lines1.pop(victim_tag):
                    l1_victim = victim_tag
            lines1[block] = is_write

            core_l2 = l2_sets[core]
            if l1_victim is not None:
                # L1 dirty eviction drops into the private L2 (fill path).
                lines2 = core_l2[l1_victim % l2_nsets]
                if lines2.pop(l1_victim, miss) is miss and len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                lines2[l1_victim] = True

            lines2 = core_l2[i2]
            dirty2 = lines2.pop(block, miss)
            if dirty2 is not miss:
                # L2 hit (demand accesses reach L2 as reads).
                lines2[block] = dirty2
                l2_hits[core] += 1
                continue
            l2_misses[core] += 1
            if len(lines2) >= l2_assoc:
                victim_tag = next(iter(lines2))
                if lines2.pop(victim_tag):
                    emit_block(victim_tag)
                    emit_write(True)
                    emit_core(core)
                    emit_ipos(ipos)
            lines2[block] = False
            emit_block(block)
            emit_write(False)
            emit_core(core)
            emit_ipos(ipos)
            if prefetch:
                next_block = block + 1
                lines2n = core_l2[next_block % l2_nsets]
                if next_block not in lines2n:
                    if len(lines2n) >= l2_assoc:
                        victim_tag = next(iter(lines2n))
                        if lines2n.pop(victim_tag):
                            emit_block(victim_tag)
                            emit_write(True)
                            emit_core(core)
                            emit_ipos(ipos)
                    lines2n[next_block] = False
                    emit_block(next_block)
                    emit_write(False)
                    emit_core(core)
                    emit_ipos(ipos)
    else:
        for block, is_write, core, ipos, i1, i2 in zip(
            blocks, writes, core_ids, ipos_list, l1_idx, l2_idx
        ):
            lines1 = l1_sets[core][i1]
            dirty1 = lines1.pop(block, miss)
            if dirty1 is not miss:
                # L1 hit: refresh to MRU.
                lines1[block] = dirty1 or is_write
                l1_hits[core] += 1
                if is_write:
                    # Exclusive directory fill: invalidate remote copies.
                    sharers = sharers_map.get(block)
                    owner_map[block] = core
                    if sharers is None:
                        sharers_map[block] = core
                    elif type(sharers) is int:
                        if sharers != core:
                            sharers_map[block] = core
                            invalidations_sent += 1
                            sharing_misses += 1
                            invalid1 = l1_sets[sharers][i1].pop(block, None)
                            invalid2 = l2_sets[sharers][i2].pop(block, None)
                            if invalid1 or invalid2:
                                emit_block(block)
                                emit_write(True)
                                emit_core(sharers)
                                emit_ipos(ipos)
                    else:
                        victims = [c for c in sharers if c != core]
                        sharers_map[block] = core
                        if victims:
                            invalidations_sent += len(victims)
                            sharing_misses += 1
                            for victim_core in victims:
                                invalid1 = l1_sets[victim_core][i1].pop(block, None)
                                invalid2 = l2_sets[victim_core][i2].pop(block, None)
                                if invalid1 or invalid2:
                                    emit_block(block)
                                    emit_write(True)
                                    emit_core(victim_core)
                                    emit_ipos(ipos)
                continue

            l1_misses[core] += 1
            l1_victim = None
            if len(lines1) >= l1_assoc:
                victim_tag = next(iter(lines1))
                if lines1.pop(victim_tag):
                    l1_victim = victim_tag
            lines1[block] = is_write

            core_l2 = l2_sets[core]
            if l1_victim is not None:
                # L1 dirty eviction drops into the private L2 (fill path).
                lines2 = core_l2[l1_victim % l2_nsets]
                if lines2.pop(l1_victim, miss) is miss and len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                        # Directory eviction notice.
                        sharers = sharers_map.get(victim_tag)
                        if sharers is not None:
                            if type(sharers) is int:
                                if sharers == core:
                                    del sharers_map[victim_tag]
                            else:
                                sharers.discard(core)
                                if not sharers:
                                    del sharers_map[victim_tag]
                        if owner_map.get(victim_tag) == core:
                            del owner_map[victim_tag]
                lines2[l1_victim] = True

            lines2 = core_l2[i2]
            dirty2 = lines2.pop(block, miss)
            if dirty2 is not miss:
                # L2 hit (demand accesses reach L2 as reads).
                lines2[block] = dirty2
                l2_hits[core] += 1
            else:
                l2_misses[core] += 1
                if len(lines2) >= l2_assoc:
                    victim_tag = next(iter(lines2))
                    if lines2.pop(victim_tag):
                        emit_block(victim_tag)
                        emit_write(True)
                        emit_core(core)
                        emit_ipos(ipos)
                        sharers = sharers_map.get(victim_tag)
                        if sharers is not None:
                            if type(sharers) is int:
                                if sharers == core:
                                    del sharers_map[victim_tag]
                            else:
                                sharers.discard(core)
                                if not sharers:
                                    del sharers_map[victim_tag]
                        if owner_map.get(victim_tag) == core:
                            del owner_map[victim_tag]
                lines2[block] = False
                emit_block(block)
                emit_write(False)
                emit_core(core)
                emit_ipos(ipos)
                if prefetch:
                    next_block = block + 1
                    lines2n = core_l2[next_block % l2_nsets]
                    if next_block not in lines2n:
                        if len(lines2n) >= l2_assoc:
                            victim_tag = next(iter(lines2n))
                            if lines2n.pop(victim_tag):
                                emit_block(victim_tag)
                                emit_write(True)
                                emit_core(core)
                                emit_ipos(ipos)
                                sharers = sharers_map.get(victim_tag)
                                if sharers is not None:
                                    if type(sharers) is int:
                                        if sharers == core:
                                            del sharers_map[victim_tag]
                                    else:
                                        sharers.discard(core)
                                        if not sharers:
                                            del sharers_map[victim_tag]
                                if owner_map.get(victim_tag) == core:
                                    del owner_map[victim_tag]
                        lines2n[next_block] = False
                        emit_block(next_block)
                        emit_write(False)
                        emit_core(core)
                        emit_ipos(ipos)

            # Directory fill for the demand block.
            if is_write:
                sharers = sharers_map.get(block)
                owner_map[block] = core
                if sharers is None:
                    sharers_map[block] = core
                elif type(sharers) is int:
                    if sharers != core:
                        sharers_map[block] = core
                        invalidations_sent += 1
                        sharing_misses += 1
                        invalid1 = l1_sets[sharers][i1].pop(block, None)
                        invalid2 = l2_sets[sharers][i2].pop(block, None)
                        if invalid1 or invalid2:
                            emit_block(block)
                            emit_write(True)
                            emit_core(sharers)
                            emit_ipos(ipos)
                else:
                    victims = [c for c in sharers if c != core]
                    sharers_map[block] = core
                    if victims:
                        invalidations_sent += len(victims)
                        sharing_misses += 1
                        for victim_core in victims:
                            invalid1 = l1_sets[victim_core][i1].pop(block, None)
                            invalid2 = l2_sets[victim_core][i2].pop(block, None)
                            if invalid1 or invalid2:
                                emit_block(block)
                                emit_write(True)
                                emit_core(victim_core)
                                emit_ipos(ipos)
            else:
                owner = owner_map.get(block)
                if owner is not None and owner != core:
                    downgrades_sent += 1
                    del owner_map[block]
                    invalid1 = l1_sets[owner][i1].pop(block, None)
                    invalid2 = l2_sets[owner][i2].pop(block, None)
                    if invalid1 or invalid2:
                        emit_block(block)
                        emit_write(True)
                        emit_core(owner)
                        emit_ipos(ipos)
                sharers = sharers_map.get(block)
                if sharers is None:
                    sharers_map[block] = core
                elif type(sharers) is int:
                    if sharers != core:
                        sharers_map[block] = {sharers, core}
                else:
                    sharers.add(core)

    directory = FullMapDirectory(n_cores)
    directory.stats.invalidations_sent = invalidations_sent
    directory.stats.downgrades_sent = downgrades_sent
    directory.stats.sharing_misses = sharing_misses

    stream = LLCStream(
        blocks=np.array(out_blocks, dtype=np.uint64),
        writes=np.array(out_writes, dtype=bool),
        cores=np.array(out_cores, dtype=np.uint16),
        instr_positions=np.array(out_ipos, dtype=np.uint64),
    )
    counters = [
        CoreCounters(
            instructions=instructions[core],
            accesses=int(accesses[core]),
            l1_hits=l1_hits[core],
            l1_misses=l1_misses[core],
            l2_hits=l2_hits[core],
            l2_misses=l2_misses[core],
        )
        for core in range(n_cores)
    ]
    return PrivateResult(
        stream=stream,
        per_core=counters,
        directory=directory.stats,
        n_threads=n_threads,
    )
