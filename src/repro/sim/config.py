"""Simulated architecture configuration (paper Table IV).

The paper models a quad-core Xeon x5550 "Gainestown" at 2.66 GHz with a
three-level cache hierarchy and four DRAM controllers.  The timing
constants that Sniper derives from its detailed core model are collapsed
here into an interval-style model's parameters (base CPI, per-level
latencies, overlap windows); they are explicit fields so sensitivity
studies can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry of one private cache level."""

    capacity_bytes: int
    associativity: int
    block_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache level sizes must be positive")
        if self.capacity_bytes % (self.block_bytes * self.associativity):
            raise ConfigurationError("cache level must have whole sets")

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.block_bytes * self.associativity)


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory model parameters (Table IV, DRAM row)."""

    n_controllers: int = 4
    bandwidth_per_controller: float = 7.6e9  # bytes/second
    base_latency_s: float = 65 * units.NS
    #: Queueing sensitivity: effective latency is
    #: ``base * (1 + queue_factor * u / (1 - u))`` at utilisation ``u``.
    queue_factor: float = 0.6
    max_utilization: float = 0.95

    @property
    def total_bandwidth(self) -> float:
        """Aggregate bandwidth across controllers, bytes/second."""
        return self.n_controllers * self.bandwidth_per_controller


@dataclass(frozen=True)
class ArchitectureConfig:
    """Full simulated-architecture parameters.

    Core-model constants (``base_cpi``, overlap windows) abstract the
    out-of-order engine: a 128-entry ROB can overlap several outstanding
    LLC misses, so the per-miss penalty is the DRAM round trip divided
    by the measured memory-level parallelism (clamped to
    ``max_mlp``, the load-queue-limited ceiling).
    """

    n_cores: int = 4
    clock_hz: float = 2.66e9
    rob_entries: int = 128
    load_queue_entries: int = 48
    store_queue_entries: int = 32

    l1d: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * units.KB, 8)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * units.KB, 8)
    )
    llc_associativity: int = 16
    llc_block_bytes: int = 64
    llc_banks: int = 16
    #: LLC replacement policy: "lru" (the paper's setup), "random", "srrip".
    llc_replacement: str = "lru"
    #: Next-line prefetch into the private L2 on every L2 demand miss.
    #: Off by default (the paper's Sniper configuration lists none).
    l2_next_line_prefetch: bool = False

    dram: DRAMConfig = field(default_factory=DRAMConfig)

    #: Cycles per instruction with no cache misses (4-wide OoO).
    base_cpi: float = 0.55
    #: L1 hit latency is pipelined away; L2 hit stall cycles per hit.
    l2_hit_cycles: float = 12.0
    #: Interconnect (ring/NoC) cycles added to every LLC access.
    llc_network_cycles: float = 22.0
    #: Fraction of an LLC hit's latency exposed after OoO overlap.
    llc_hit_exposure: float = 0.55
    #: ROB instruction window used to cluster overlapping misses.
    mlp_window_instructions: int = 128
    #: Ceiling on exploitable memory-level parallelism.
    max_mlp: float = 6.0
    #: Fraction of LLC *write* bank occupancy charged against runtime.
    #: The paper's Sniper configuration assumes LLC writes happen off the
    #: critical path (Section V-A-7), i.e. 0.0; setting 1.0 exposes the
    #: full write-latency backpressure (the ablation in DESIGN.md).
    llc_write_backpressure: float = 0.0
    #: Charge demand-miss fills at E_dyn,write.  The paper's equation (7)
    #: prices a miss as a tag probe only, so the default is False; True
    #: is the fill-energy ablation.
    llc_fill_writes: bool = False

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("n_cores must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if self.max_mlp < 1.0:
            raise ConfigurationError("max_mlp must be at least 1")

    @property
    def cycle_s(self) -> float:
        """Seconds per core cycle."""
        return 1.0 / self.clock_hz

    def cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) core cycles."""
        return seconds * self.clock_hz

    def with_cores(self, n_cores: int) -> "ArchitectureConfig":
        """A copy with a different core count (core-sweep study)."""
        return replace(self, n_cores=n_cores)


def gainestown(n_cores: int = 4) -> ArchitectureConfig:
    """The paper's simulated architecture (Table IV)."""
    return ArchitectureConfig(n_cores=n_cores)
