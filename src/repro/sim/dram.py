"""DRAM subsystem model (paper Table IV, DRAM row).

The paper's main memory is four distributed DRAM controllers, 4 DIMMs
each, full-map directories, 7.6 GB/s per controller.  The system timing
solve uses an aggregate bandwidth/queueing approximation; this module
adds the structural model underneath it for analyses that need more
than the aggregate:

- block-address interleaving across controllers and banks,
- per-controller traffic split (channel imbalance detection),
- a row-buffer model over the LLC miss stream (open-page policy),
- an effective-latency estimate combining row-buffer hit rate and
  queueing, usable as a drop-in refinement of the flat base latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import DRAMConfig

#: Row-buffer (DRAM page) size per bank, bytes.
ROW_BYTES = 8 * units.KB

#: Banks per controller (8 chips/DIMM x typical 8 banks, flattened).
BANKS_PER_CONTROLLER = 16

#: Latency components (seconds): row hit vs row conflict (precharge +
#: activate + CAS vs CAS only), typical DDR3-era values.
ROW_HIT_LATENCY_S = 25e-9
ROW_CONFLICT_LATENCY_S = 75e-9


@dataclass(frozen=True)
class DRAMTraffic:
    """Structural accounting of one miss stream's DRAM behaviour."""

    per_controller: np.ndarray  # accesses per controller
    row_hits: int
    row_conflicts: int

    @property
    def total_accesses(self) -> int:
        """All DRAM accesses."""
        return int(self.per_controller.sum())

    @property
    def row_hit_rate(self) -> float:
        """Open-page row-buffer hit rate."""
        total = self.row_hits + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def channel_imbalance(self) -> float:
        """Busiest controller's traffic over the mean (1.0 = balanced)."""
        mean = self.per_controller.mean()
        if mean == 0:
            return 0.0
        return float(self.per_controller.max() / mean)

    def effective_latency_s(
        self,
        config: DRAMConfig,
        window_s: float,
    ) -> float:
        """Mean access latency with row-buffer and queueing effects.

        The service latency mixes row hits and conflicts by the measured
        rate; the queueing factor uses the *busiest* controller's
        utilisation (the tail channel sets the experienced latency).
        """
        if window_s <= 0:
            raise SimulationError("window must be positive")
        service = (
            self.row_hit_rate * ROW_HIT_LATENCY_S
            + (1.0 - self.row_hit_rate) * ROW_CONFLICT_LATENCY_S
        )
        busiest_bytes = float(self.per_controller.max()) * 64
        utilization = min(
            config.max_utilization,
            busiest_bytes / (window_s * config.bandwidth_per_controller),
        )
        queue = 1.0 + config.queue_factor * utilization / (1.0 - utilization)
        return service * queue


class DRAMSubsystem:
    """Address-interleaved controller/bank structure."""

    def __init__(self, config: Optional[DRAMConfig] = None) -> None:
        self.config = config or DRAMConfig()
        if self.config.n_controllers <= 0:
            raise ConfigurationError("need at least one DRAM controller")

    def controller_of(self, block: int) -> int:
        """Controller a block address maps to (block interleaving)."""
        return block % self.config.n_controllers

    def bank_of(self, block: int) -> int:
        """Bank within the controller (row-interleaved)."""
        row = (block * 64) // ROW_BYTES
        return (row // self.config.n_controllers) % BANKS_PER_CONTROLLER

    def row_of(self, block: int) -> int:
        """DRAM row the block lives in."""
        return (block * 64) // ROW_BYTES

    def replay(self, blocks: np.ndarray) -> DRAMTraffic:
        """Replay a DRAM-access block stream through the structure.

        Open-page policy: a bank's row buffer holds the last row it
        served; a repeat access to the same row is a row hit.
        """
        blocks = np.asarray(blocks, dtype=np.uint64)
        n_controllers = self.config.n_controllers
        per_controller = np.zeros(n_controllers, dtype=np.int64)
        open_rows: Dict[int, int] = {}
        hits = 0
        conflicts = 0
        for raw in blocks:
            block = int(raw)
            controller = self.controller_of(block)
            per_controller[controller] += 1
            bank_key = controller * BANKS_PER_CONTROLLER + self.bank_of(block)
            row = self.row_of(block)
            if open_rows.get(bank_key) == row:
                hits += 1
            else:
                conflicts += 1
                open_rows[bank_key] = row
        return DRAMTraffic(
            per_controller=per_controller,
            row_hits=hits,
            row_conflicts=conflicts,
        )


def dram_traffic_from_stream(stream, counts, subsystem: Optional[DRAMSubsystem] = None):
    """DRAM traffic for a simulated run: the LLC's miss + writeback blocks.

    Convenience wrapper: replays the demand-missed blocks (read fetches)
    through the structure.  Dirty writebacks are bandwidth, not latency,
    and are accounted by the aggregate model; they are excluded here.
    """
    subsystem = subsystem or DRAMSubsystem()
    # Demand misses in stream order: reads that missed.  Without per-
    # access hit/miss flags we conservatively replay all demand reads,
    # which preserves row-locality structure (misses are a subsequence).
    read_blocks = stream.blocks[~stream.writes]
    return subsystem.replay(read_blocks)
