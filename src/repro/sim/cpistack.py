"""CPI stacks — where the cycles go.

Sniper's signature output is the CPI stack: cycles per instruction
decomposed into base work and each stall class.  The interval model in
:mod:`repro.sim.timing` already computes the components; this module
aggregates them per run and renders the comparison that explains the
paper's results (e.g. why slow NVM writes vanish — no write component
on the critical path — while LLC-hit latency shows up for hit-heavy
workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.results import SimResult

#: Stack component order (bottom to top).
COMPONENTS: Tuple[str, ...] = ("base", "l2", "llc_hit", "llc_miss")


@dataclass(frozen=True)
class CPIStack:
    """Cycles-per-instruction decomposition of one simulation.

    Components are aggregated over the cores weighted by their
    instruction counts, so the stack reflects the whole system.
    """

    workload: str
    llc_name: str
    base: float
    l2: float
    llc_hit: float
    llc_miss: float

    @property
    def total(self) -> float:
        """Total CPI (sum of components)."""
        return self.base + self.l2 + self.llc_hit + self.llc_miss

    def component(self, name: str) -> float:
        """One component by name."""
        if name not in COMPONENTS:
            raise SimulationError(f"unknown CPI component {name!r}")
        return getattr(self, name)

    def fractions(self) -> Dict[str, float]:
        """Share of total CPI per component."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: self.component(name) / total for name in COMPONENTS}

    @property
    def memory_boundedness(self) -> float:
        """Fraction of cycles stalled on the memory system (non-base)."""
        total = self.total
        return 1.0 - self.base / total if total else 0.0


def cpi_stack(result: SimResult) -> CPIStack:
    """Aggregate a SimResult's per-core breakdowns into one CPI stack."""
    instructions = result.total_instructions
    if instructions <= 0:
        raise SimulationError("CPI stack needs a positive instruction count")
    base = l2 = hit = miss = 0.0
    for breakdown in result.timing.core_breakdowns:
        base += breakdown.base_cycles
        l2 += breakdown.l2_stall_cycles
        hit += breakdown.llc_hit_stall_cycles
        miss += breakdown.llc_miss_stall_cycles
    return CPIStack(
        workload=result.workload,
        llc_name=result.llc_name,
        base=base / instructions,
        l2=l2 / instructions,
        llc_hit=hit / instructions,
        llc_miss=miss / instructions,
    )


def render_stacks(stacks: Sequence[CPIStack], width: int = 50) -> str:
    """Render CPI stacks as horizontal proportional bars.

    One row per stack; segments use a distinct glyph per component:
    ``.`` base, ``:`` L2, ``h`` LLC hits, ``M`` LLC misses.
    """
    if not stacks:
        raise SimulationError("render_stacks needs at least one stack")
    glyphs = {"base": ".", "l2": ":", "llc_hit": "h", "llc_miss": "M"}
    peak = max(stack.total for stack in stacks)
    if peak == 0:
        raise SimulationError("all stacks are empty")
    label_width = max(len(f"{s.workload}/{s.llc_name}") for s in stacks)
    lines = [
        f"{'CPI stacks'.ljust(label_width)} "
        f"[{' '.join(f'{glyphs[c]}={c}' for c in COMPONENTS)}]"
    ]
    for stack in stacks:
        row = []
        for name in COMPONENTS:
            segment = int(round(stack.component(name) / peak * width))
            row.append(glyphs[name] * segment)
        label = f"{stack.workload}/{stack.llc_name}".ljust(label_width)
        lines.append(f"{label} {''.join(row)} {stack.total:.2f}")
    return "\n".join(lines)
