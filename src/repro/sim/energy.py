"""LLC energy accounting (paper equations (6)-(8) applied to counts).

Dynamic energy charges every LLC event with its Table III energy:
read hits at ``E_dyn,hit``, demand misses at ``E_dyn,miss`` (tag probe
only, per the paper's equation (7)) and writeback writes at
``E_dyn,write``; demand-miss fills are free by default (ablatable).
Leakage integrates the model's standby power over the resolved runtime,
which is how slow NVMs lose their dynamic-energy advantage on long
runs (paper Section V-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.nvsim.model import LLCModel
from repro.sim.llc import LLCCounts


@dataclass(frozen=True)
class LLCEnergy:
    """Energy breakdown of one simulation, joules."""

    hit_energy_j: float
    miss_energy_j: float
    write_energy_j: float
    leakage_energy_j: float

    @property
    def dynamic_j(self) -> float:
        """All dynamic (per-access) energy."""
        return self.hit_energy_j + self.miss_energy_j + self.write_energy_j

    @property
    def total_j(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_j + self.leakage_energy_j

    @property
    def leakage_fraction(self) -> float:
        """Share of total energy spent leaking."""
        total = self.total_j
        return self.leakage_energy_j / total if total else 0.0


def llc_energy(
    counts: LLCCounts,
    llc_model: LLCModel,
    runtime_s: float,
    include_fill_writes: bool = False,
    write_energy_scale: float = 1.0,
) -> LLCEnergy:
    """Account the LLC's energy for one resolved simulation.

    ``include_fill_writes`` charges demand-miss block installations at
    ``E_dyn,write`` too.  The paper's equation (7) prices a miss as a
    tag probe only, so the default matches the paper; turning fills on
    is the ablation DESIGN.md calls out (physically, an NVM data array
    pays programming energy on every installation).

    ``write_energy_scale`` multiplies the per-write dynamic energy —
    the hook compressed LLCs use to charge only the bytes actually
    programmed (the replay outcome's ``write_bytes_fraction``).  The
    default 1.0 is float-exact, so uncompressed results are unchanged
    to the last ulp.
    """
    if not math.isfinite(runtime_s) or runtime_s < 0:
        # `runtime_s < 0` alone lets NaN through (NaN compares False),
        # and a NaN runtime would poison leakage — and then every
        # downstream ratio — silently.
        raise SimulationError(
            f"runtime must be a finite non-negative number, got {runtime_s!r}"
        )
    if not math.isfinite(write_energy_scale) or write_energy_scale <= 0:
        raise SimulationError(
            f"write_energy_scale must be a finite positive number, "
            f"got {write_energy_scale!r}"
        )
    writes = counts.data_writes if include_fill_writes else counts.write_accesses
    return LLCEnergy(
        hit_energy_j=counts.read_hits * llc_model.hit_energy_j,
        miss_energy_j=counts.read_misses * llc_model.miss_energy_j,
        write_energy_j=writes * llc_model.write_energy_j * write_energy_scale,
        leakage_energy_j=llc_model.leakage_w * runtime_s,
    )
