"""Per-cell checkpoint journal for resumable experiment runs.

A long sweep is a sequence of deterministic, content-addressed
:class:`~repro.sim.parallel.SweepCell` units.  This module persists each
completed cell's :class:`~repro.sim.results.SimResult` set to an
append-only JSONL journal (``checkpoint.jsonl``) beside the run's
results, so a run killed at 80% restarts with ``repro-experiments
--resume RUN_DIR`` and re-runs only the remainder.

Records are keyed by :func:`cell_digest` — the same identity the replay
cache uses (the full resolved cell key plus
:data:`~repro.sim.replay_cache.CACHE_VERSION`), so bumping the replay
semantics invalidates checkpoints exactly when it invalidates cached
replays.

Durability model
----------------

- Each record is one line: ``{"check": <digest>, "payload": {...}}``
  where ``check`` is a blake2b digest of the canonical payload JSON.
  Every write is flushed and fsync'd before :meth:`~CheckpointJournal
  .record` returns, so a SIGKILL never loses an acknowledged cell.
- A crash (or ENOSPC) mid-write leaves at most one truncated line;
  :meth:`~CheckpointJournal.load` verifies every line's checksum and
  skips unreadable ones (counted in ``checkpoint.corrupt_records``), so
  a damaged record costs one re-run, never a wrong result.
- After a failed write the journal resynchronises by prefixing the next
  record with a newline, so one lost write cannot corrupt its
  successor.

Serialization round-trips exactly: JSON preserves Python floats
bit-for-bit (``repr``-based), so a resumed run's output is
byte-identical to an uninterrupted one — the CI kill-and-resume smoke
job diffs the two.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError
from repro.obs import metrics as _metrics
from repro.sim.results import SimResult

#: Journal file name inside a run directory.
CHECKPOINT_NAME = "checkpoint.jsonl"

#: Journal record schema (part of every cell digest: bumping it
#: invalidates old journals).
JOURNAL_SCHEMA = 1


def cell_digest(cell) -> str:
    """Stable identity of one sweep cell (+ replay semantics version).

    Covers every field that affects the cell's results — workload,
    configuration, model names, seed, resolved trace length, thread
    count, and the full architecture — plus
    :data:`~repro.sim.replay_cache.CACHE_VERSION` so checkpoints expire
    together with cached replays.
    """
    from repro.sim.replay_cache import CACHE_VERSION

    parts = (
        JOURNAL_SCHEMA,
        CACHE_VERSION,
        cell.workload,
        cell.configuration,
        tuple(cell.model_names),
        cell.seed,
        cell.n_accesses,
        cell.n_threads,
        repr(cell.arch) if cell.arch is not None else None,
    )
    return hashlib.blake2b(repr(parts).encode(), digest_size=16).hexdigest()


def _plain(value: Any) -> Any:
    """Recursively convert numpy scalars/sequences to JSON-native types."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        return item()
    return value


def result_to_dict(result: SimResult) -> Dict[str, Any]:
    """JSON-ready form of a :class:`SimResult` (exact float round-trip)."""
    return _plain(dataclasses.asdict(result))


def result_from_dict(data: Dict[str, Any]) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output."""
    from repro.sim.energy import LLCEnergy
    from repro.sim.llc import LLCCounts
    from repro.sim.timing import CoreBreakdown, SystemTiming

    timing = dict(data["timing"])
    timing["core_breakdowns"] = [
        CoreBreakdown(**core) for core in timing["core_breakdowns"]
    ]
    return SimResult(
        workload=data["workload"],
        llc_name=data["llc_name"],
        configuration=data["configuration"],
        runtime_s=data["runtime_s"],
        energy=LLCEnergy(**data["energy"]),
        counts=LLCCounts(**data["counts"]),
        timing=SystemTiming(**timing),
        total_instructions=data["total_instructions"],
    )


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=8).hexdigest()


def journal_line(payload: Dict[str, Any]) -> str:
    """One checksummed journal line (no trailing newline) for ``payload``.

    The line format every durable JSONL journal in this package shares
    (the cell checkpoint here, the service job journal in
    :mod:`repro.serve.journal`): ``{"check": <blake2b of canonical
    payload JSON>, "payload": {...}}`` with sorted keys, so
    :func:`parse_journal_line` can verify integrity line-by-line.
    """
    body = _canonical(payload)
    return json.dumps(
        {"check": _checksum(body), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def parse_journal_line(line: str) -> Dict[str, Any]:
    """Parse and verify one :func:`journal_line`; returns the payload.

    Raises :class:`ValueError` on any damage — unparseable JSON, a
    missing field, or a checksum mismatch — so callers can skip (and
    count) corrupt records without ever trusting their contents.
    """
    try:
        record = json.loads(line)
        payload = record["payload"]
        check = record["check"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise ValueError(f"unreadable journal line: {error}")
    if check != _checksum(_canonical(payload)):
        raise ValueError("journal line checksum mismatch")
    return payload


class CheckpointJournal:
    """Append-only, checksummed JSONL journal of completed sweep cells.

    Parameters
    ----------
    directory:
        The run directory; the journal lives at
        ``directory/checkpoint.jsonl``.

    One journal instance serves one run: :meth:`load` recovers whatever
    a previous (possibly killed) run left behind, :meth:`record`
    appends each newly completed cell durably.  ``recorded`` /
    ``skipped_corrupt`` count this instance's activity.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CHECKPOINT_NAME
        self.recorded = 0
        self.skipped_corrupt = 0
        self._handle = None
        self._dirty = False  # resync with a newline after a failed write

    # -- recovery ---------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, SimResult]]:
        """Recover completed cells: ``{cell_digest: {model: SimResult}}``.

        Tolerates a journal truncated at any byte offset (crash
        mid-write) and arbitrary line corruption: every line must parse
        and match its embedded checksum or it is skipped and counted —
        a damaged record merely re-runs its cell.
        """
        out: Dict[str, Dict[str, SimResult]] = {}
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return out
        except OSError as error:
            raise CheckpointError(f"unreadable checkpoint journal {self.path}: {error}")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = parse_journal_line(line)
                if payload["schema"] != JOURNAL_SCHEMA:
                    raise ValueError("unknown journal schema")
                results = {
                    name: result_from_dict(value)
                    for name, value in payload["results"].items()
                }
            except Exception:
                self.skipped_corrupt += 1
                _metrics.counter_add("checkpoint.corrupt_records")
                continue
            out[payload["key"]] = results
        return out

    # -- recording --------------------------------------------------------

    def record(self, cell, results: Dict[str, SimResult]) -> str:
        """Durably append one completed cell; returns its digest.

        Raises :class:`CheckpointError` on write failure (e.g. ENOSPC);
        the journal stays consistent — earlier records are already
        fsync'd and the next successful write resynchronises the line
        framing — so callers may treat the failure as non-fatal.
        """
        key = cell_digest(cell)
        payload = {
            "schema": JOURNAL_SCHEMA,
            "key": key,
            "workload": cell.workload,
            "configuration": cell.configuration,
            "results": {name: result_to_dict(r) for name, r in results.items()},
        }
        line = journal_line(payload)
        try:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            prefix = "\n" if self._dirty else ""
            self._handle.write(prefix + line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as error:
            self._dirty = True
            _metrics.counter_add("checkpoint.write_failures")
            raise CheckpointError(f"checkpoint write failed ({self.path}): {error}")
        self._dirty = False
        self.recorded += 1
        _metrics.counter_add("checkpoint.cells_recorded")
        return key

    def close(self) -> None:
        """Close the journal handle (safe to call repeatedly)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def discard(self) -> None:
        """Delete the journal file (fresh-run semantics for a reused
        run directory)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise CheckpointError(f"cannot discard {self.path}: {error}")
