"""Top-level system simulation: wiring the pipeline together.

``simulate_system`` is the one-call entry point; the staged functions
(:func:`repro.sim.hierarchy.filter_private`,
:func:`repro.sim.llc.simulate_llc`, :func:`assemble_result`) are public
so experiment drivers can reuse the technology-independent stages across
many LLC models — private filtering depends only on the architecture,
and LLC replay only on the geometry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.nvsim.model import LLCModel
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.hierarchy import PrivateResult, filter_private
from repro.sim.llc import LLCCounts, simulate_llc
from repro.sim.results import SimResult
from repro.trace.stream import Trace


def replay_llc(
    private: PrivateResult, llc_model: LLCModel, arch: ArchitectureConfig
) -> LLCCounts:
    """Replay the LLC stream at this model's geometry."""
    return simulate_llc(
        private.stream,
        capacity_bytes=llc_model.capacity_bytes,
        associativity=arch.llc_associativity,
        block_bytes=arch.llc_block_bytes,
        n_cores=arch.n_cores,
        mlp_window=arch.mlp_window_instructions,
        mlp_ceiling=arch.max_mlp,
        policy=arch.llc_replacement,
    )


def assemble_result(
    workload: str,
    configuration: str,
    private: PrivateResult,
    counts: LLCCounts,
    llc_model: LLCModel,
    arch: ArchitectureConfig,
) -> SimResult:
    """Resolve timing and energy from precomputed counts.

    Every assembled result — serial, parallel-worker and resumed paths
    all converge here — is priced through the shared
    :func:`repro.nvsim.pricing.price_counts` hook (also used by the
    analytical surrogate) and passes the output guard
    (:func:`repro.validate.guard.guard_result`) before it is returned,
    so an implausible result can never reach the checkpoint journal,
    the replay cache or a rendered table.
    """
    from repro.nvsim.pricing import price_counts

    return price_counts(
        workload, configuration, private, counts, llc_model, arch
    )


def simulate_system(
    trace: Trace,
    llc_model: LLCModel,
    arch: Optional[ArchitectureConfig] = None,
    configuration: str = "fixed-capacity",
    private: Optional[PrivateResult] = None,
    llc_counts: Optional[LLCCounts] = None,
) -> SimResult:
    """Simulate one workload trace on one LLC model.

    ``private`` and ``llc_counts`` may be supplied to skip the heavy
    stages (the experiment drivers cache them across LLC sweeps); when
    omitted they are computed here.
    """
    arch = arch or gainestown()
    if private is None:
        private = filter_private(trace, arch)
    if llc_counts is None:
        llc_counts = replay_llc(private, llc_model, arch)
    return assemble_result(
        workload=trace.name or "trace",
        configuration=configuration,
        private=private,
        counts=llc_counts,
        llc_model=llc_model,
        arch=arch,
    )


class SimulationSession:
    """Caches technology-independent stages across an LLC sweep.

    One session per (trace, architecture).  ``run(llc_model)`` reuses
    the private-level replay for every model and the LLC replay for
    every model with the same capacity.

    When the persistent replay cache (:mod:`repro.sim.replay_cache`) is
    enabled, both stages are additionally memoised on disk by content
    fingerprint, so repeated runs — and parallel workers replaying the
    same (workload, architecture) cell — skip redundant replays.
    ``private`` may be supplied up front when the caller already holds a
    replay for an architecture with identical private levels.
    """

    def __init__(
        self,
        trace: Trace,
        arch: Optional[ArchitectureConfig] = None,
        configuration: str = "fixed-capacity",
        private: Optional[PrivateResult] = None,
        replay_cache=None,
    ) -> None:
        from repro.sim.replay_cache import default_cache

        self.trace = trace
        self.arch = arch or gainestown()
        self.configuration = configuration
        self._private = private
        self._llc_cache: Dict[Tuple[int, int], LLCCounts] = {}
        self._replay_cache = replay_cache if replay_cache is not None else default_cache()
        self._trace_fp: Optional[str] = None
        self._reuse_profile = None

    @property
    def _fingerprint(self) -> str:
        if self._trace_fp is None:
            from repro.sim.replay_cache import trace_fingerprint

            self._trace_fp = trace_fingerprint(self.trace)
        return self._trace_fp

    def _engine_meta(self) -> dict:
        """Provenance recorded with LLC cache stores: the engine that
        served the replay (non-LRU policies always use the reference
        loop).  Every engine's output is bit-identical, so this never
        affects keys or hits — it only documents who computed the
        entry."""
        from repro.sim.engine import resolve_engine

        eng = resolve_engine(None)
        if self.arch.llc_replacement != "lru":
            eng = "reference"
        return {"engine": eng}

    @property
    def private(self) -> PrivateResult:
        """The private-level replay (computed once, disk-memoised)."""
        if self._private is None:
            cache = self._replay_cache
            use_disk = cache.should_cache(self.trace)
            if use_disk:
                key = cache.private_key(self._fingerprint, self.arch)
                cached = cache.get(key)
                if cached is not None:
                    self._private = cached
                    return self._private
            self._private = filter_private(self.trace, self.arch)
            if use_disk:
                from repro.sim.engine import resolve_engine

                cache.put(
                    key,
                    self._private,
                    meta={"engine": resolve_engine(None)},
                )
        return self._private

    def reuse_profile(self):
        """Analytic stream-reuse profile of this session's LLC stream.

        The input of the analytical surrogate (:mod:`repro.analytic`):
        one pass over the technology-independent stream yields hit,
        miss, write and dirty-eviction predictions at *any* capacity.
        Computed once per session and disk-memoised alongside the
        private replay (``profile-*`` entries, keyed like the replay
        cache's private key plus the profile-algorithm version).
        """
        if getattr(self, "_reuse_profile", None) is None:
            from repro.prism.reuse import (
                STREAM_PROFILE_VERSION,
                stream_reuse_profile,
            )

            cache = self._replay_cache
            use_disk = cache.should_cache(self.trace)
            key = None
            if use_disk:
                key = cache.profile_key(
                    self._fingerprint, self.arch, STREAM_PROFILE_VERSION
                )
                cached = cache.get(key)
                if cached is not None and getattr(cached, "version", None) == (
                    STREAM_PROFILE_VERSION
                ):
                    self._reuse_profile = cached
                    return self._reuse_profile
            self._reuse_profile = stream_reuse_profile(
                self.private.stream, self.arch.n_cores
            )
            if use_disk:
                cache.put(key, self._reuse_profile, meta=self._engine_meta())
        return self._reuse_profile

    def counts_for(self, llc_model: LLCModel) -> LLCCounts:
        """LLC counts for this model's geometry (cached by capacity)."""
        key = (llc_model.capacity_bytes, self.arch.llc_associativity)
        if key not in self._llc_cache:
            cache = self._replay_cache
            use_disk = cache.should_cache(self.trace)
            if use_disk:
                disk_key = cache.llc_key(
                    self._fingerprint, self.arch, llc_model.capacity_bytes
                )
                cached = cache.get(disk_key)
                if cached is not None:
                    self._llc_cache[key] = cached
                    return cached
            from repro.validate.guard import guard_counts

            counts = guard_counts(
                replay_llc(self.private, llc_model, self.arch),
                subject=f"LLC replay {self.trace.name or 'trace'}"
                        f"@{llc_model.capacity_bytes}B",
            )
            self._llc_cache[key] = counts
            if use_disk:
                cache.put(disk_key, counts, meta=self._engine_meta())
        return self._llc_cache[key]

    def run(
        self, llc_model: LLCModel, configuration: Optional[str] = None
    ) -> SimResult:
        """Simulate this session's workload on one LLC model."""
        return assemble_result(
            workload=self.trace.name or "trace",
            configuration=configuration or self.configuration,
            private=self.private,
            counts=self.counts_for(llc_model),
            llc_model=llc_model,
            arch=self.arch,
        )
