"""Shared LLC simulation over the post-L2 stream.

Replays an :class:`~repro.sim.hierarchy.LLCStream` through one shared
set-associative cache and produces the event counts the timing and
energy models consume.  Geometry (capacity/associativity/block) is the
only technology-dependent input — latencies and energies are applied
afterwards — so one replay serves every LLC technology with the same
capacity (all of fixed-capacity, and each capacity class of fixed-area).

Also estimates per-core memory-level parallelism (MLP) by clustering
demand-miss instruction positions within a ROB-sized window: misses
whose issuing instructions fit inside one window overlap in the
out-of-order engine, so their DRAM latencies are paid once per cluster,
not once per miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import LLCStream
from repro.sim.replacement import make_cache


@dataclass
class LLCCounts:
    """Event counts from one LLC replay.

    ``fills`` counts block installations into the data array (every miss
    allocates); for an NVM LLC each fill is a *write* of the data array
    and is charged write latency/energy — this is what makes high-mpki
    workloads expensive on PCRAM even when the program itself rarely
    stores.
    """

    capacity_bytes: int
    associativity: int
    read_lookups: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    dirty_evictions: int = 0
    per_core_read_hits: List[int] = field(default_factory=list)
    per_core_read_misses: List[int] = field(default_factory=list)
    per_core_mlp: List[float] = field(default_factory=list)

    @property
    def fills(self) -> int:
        """Data-array installations (one per miss, write-allocate)."""
        return self.read_misses + self.write_misses

    @property
    def data_writes(self) -> int:
        """All data-array write operations: writeback hits, writeback
        allocations and demand fills."""
        return self.write_accesses + self.read_misses

    @property
    def dram_reads(self) -> int:
        """Blocks fetched from DRAM (demand misses only: writeback
        allocations install full blocks without a fetch)."""
        return self.read_misses

    @property
    def dram_writes(self) -> int:
        """Dirty blocks written back to DRAM."""
        return self.dirty_evictions

    @property
    def miss_rate(self) -> float:
        """Demand miss rate."""
        return self.read_misses / self.read_lookups if self.read_lookups else 0.0

    def mpki(self, total_instructions: int) -> float:
        """Demand LLC misses per kilo-instruction (Table V's metric)."""
        if total_instructions <= 0:
            raise SimulationError("instruction count must be positive")
        return 1000.0 * self.read_misses / total_instructions


def estimate_mlp(
    miss_positions: np.ndarray, window: int, ceiling: float
) -> float:
    """Cluster miss instruction-positions into ROB windows.

    Returns mean misses per cluster, clamped to ``[1, ceiling]``.
    """
    n = len(miss_positions)
    if n == 0:
        return 1.0
    if n == 1:
        return 1.0
    gaps = np.diff(miss_positions.astype(np.int64))
    clusters = 1 + int((gaps > window).sum())
    return float(min(ceiling, max(1.0, n / clusters)))


def simulate_llc(
    stream: LLCStream,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
    mlp_window: int = 128,
    mlp_ceiling: float = 6.0,
    policy: str = "lru",
    engine: Optional[str] = None,
) -> LLCCounts:
    """Replay the LLC stream through one shared cache geometry.

    ``policy`` selects the replacement policy (lru/random/srrip); the
    paper's configuration is LRU.  ``engine`` selects the replay
    implementation (see :mod:`repro.sim.engine`); the batched fast and
    vectorized engines implement LRU only, so other policies always use
    the reference loop.

    When run metrics are enabled (:mod:`repro.obs`), the replay is
    wrapped in a ``sim.llc_replay`` span and the event totals — lookups,
    hits/misses split by read/write, dirty writebacks to DRAM — are
    recorded, tagged with the engine that served the call.
    """
    from repro.sim.engine import (
        resolve_engine,
        simulate_llc_fast,
        simulate_llc_vector,
    )

    eng = resolve_engine(engine) if policy == "lru" else "reference"
    with _metrics.span("sim.llc_replay"):
        if eng == "vector":
            counts = simulate_llc_vector(
                stream,
                capacity_bytes,
                associativity=associativity,
                block_bytes=block_bytes,
                n_cores=n_cores,
                mlp_window=mlp_window,
                mlp_ceiling=mlp_ceiling,
            )
        elif eng == "fast":
            counts = simulate_llc_fast(
                stream,
                capacity_bytes,
                associativity=associativity,
                block_bytes=block_bytes,
                n_cores=n_cores,
                mlp_window=mlp_window,
                mlp_ceiling=mlp_ceiling,
            )
        else:
            counts = _simulate_llc_reference(
                stream,
                capacity_bytes,
                associativity=associativity,
                block_bytes=block_bytes,
                n_cores=n_cores,
                mlp_window=mlp_window,
                mlp_ceiling=mlp_ceiling,
                policy=policy,
            )
    if _metrics.enabled():
        _metrics.counter_add(f"sim.engine.{eng}.llc_replays")
        _metrics.counter_add("sim.llc.accesses", len(stream))
        _metrics.counter_add("sim.llc.read_lookups", counts.read_lookups)
        _metrics.counter_add("sim.llc.read_hits", counts.read_hits)
        _metrics.counter_add("sim.llc.read_misses", counts.read_misses)
        _metrics.counter_add("sim.llc.write_hits", counts.write_hits)
        _metrics.counter_add("sim.llc.write_misses", counts.write_misses)
        _metrics.counter_add("sim.llc.dirty_evictions", counts.dirty_evictions)
    return counts


def _simulate_llc_reference(
    stream: LLCStream,
    capacity_bytes: int,
    associativity: int,
    block_bytes: int,
    n_cores: int,
    mlp_window: int,
    mlp_ceiling: float,
    policy: str,
) -> LLCCounts:
    """The reference per-access LLC replay (any replacement policy)."""
    cache = make_cache(capacity_bytes, block_bytes, associativity, policy)
    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    read_hits = [0] * n_cores
    read_misses = [0] * n_cores
    miss_positions: List[List[int]] = [[] for _ in range(n_cores)]

    blocks = stream.blocks
    writes = stream.writes
    cores = stream.cores
    positions = stream.instr_positions

    for i in range(len(stream)):
        block = int(blocks[i])
        core = int(cores[i])
        if bool(writes[i]):
            outcome = cache.access(block, True)
            counts.write_accesses += 1
            if outcome.hit:
                counts.write_hits += 1
            else:
                counts.write_misses += 1
            if outcome.dirty_victim is not None:
                counts.dirty_evictions += 1
        else:
            outcome = cache.access(block, False)
            counts.read_lookups += 1
            if outcome.hit:
                counts.read_hits += 1
                read_hits[core] += 1
            else:
                counts.read_misses += 1
                read_misses[core] += 1
                miss_positions[core].append(int(positions[i]))
            if outcome.dirty_victim is not None:
                counts.dirty_evictions += 1

    counts.per_core_read_hits = read_hits
    counts.per_core_read_misses = read_misses
    counts.per_core_mlp = [
        estimate_mlp(np.array(p, dtype=np.uint64), mlp_window, mlp_ceiling)
        for p in miss_positions
    ]
    return counts
