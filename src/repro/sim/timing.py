"""System timing: interval-style core model plus shared-resource limits.

Per-core cycles follow an interval model (Sniper's abstraction level):

- instructions retire at ``base_cpi`` while the pipeline is unstalled;
- L2 hits add a fixed private-hit penalty;
- LLC read hits expose a fraction of their latency (OoO hides the rest);
- LLC demand misses pay the DRAM round trip divided by the measured
  memory-level parallelism of that core's miss stream.

LLC *writes* are off the critical path (the paper notes Sniper assumes
this) — they cost no core stalls, but they occupy LLC banks.  Runtime is
therefore the maximum of: slowest core, total LLC bank occupancy, and
DRAM bandwidth service time; DRAM queueing feeds back into the miss
penalty through a short fixed-point iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nvsim.model import LLCModel
from repro.sim.config import ArchitectureConfig
from repro.sim.hierarchy import PrivateResult
from repro.sim.llc import LLCCounts


@dataclass(frozen=True)
class CoreBreakdown:
    """Cycle breakdown for one core."""

    base_cycles: float
    l2_stall_cycles: float
    llc_hit_stall_cycles: float
    llc_miss_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        """All cycles for this core."""
        return (
            self.base_cycles
            + self.l2_stall_cycles
            + self.llc_hit_stall_cycles
            + self.llc_miss_stall_cycles
        )


@dataclass(frozen=True)
class SystemTiming:
    """Resolved timing of one simulation.

    ``bound`` records which resource set the runtime: ``"core"`` (the
    slowest core's critical path), ``"llc"`` (bank occupancy — the write
    backpressure case) or ``"dram"`` (bandwidth saturation).
    """

    runtime_s: float
    core_breakdowns: List[CoreBreakdown]
    dram_latency_s: float
    dram_utilization: float
    llc_busy_s: float
    bound: str

    @property
    def runtime_cycles(self) -> float:
        """Runtime expressed in core cycles (set by the binding core)."""
        return max(b.total_cycles for b in self.core_breakdowns)


def _core_cycles(
    instructions: int,
    l2_hits: int,
    llc_read_hits: int,
    llc_read_misses: int,
    mlp: float,
    llc_model: LLCModel,
    arch: ArchitectureConfig,
    dram_latency_s: float,
) -> CoreBreakdown:
    base = instructions * arch.base_cpi
    l2_stall = l2_hits * arch.l2_hit_cycles
    hit_latency_cycles = (
        arch.cycles(llc_model.tag_latency_s + llc_model.read_latency_s)
        + arch.llc_network_cycles
    )
    hit_stall = llc_read_hits * hit_latency_cycles * arch.llc_hit_exposure
    miss_latency_cycles = (
        arch.cycles(llc_model.tag_latency_s + dram_latency_s)
        + arch.llc_network_cycles
    )
    miss_stall = llc_read_misses * miss_latency_cycles / max(1.0, mlp)
    return CoreBreakdown(
        base_cycles=base,
        l2_stall_cycles=l2_stall,
        llc_hit_stall_cycles=hit_stall,
        llc_miss_stall_cycles=miss_stall,
    )


def llc_bank_busy_s(
    counts: LLCCounts, llc_model: LLCModel, write_backpressure: float = 1.0
) -> float:
    """LLC service time demanded, summed over accesses.

    Read hits occupy tag+data read; misses probe the tag only; every
    data write (writeback or fill) occupies tag plus the mean write
    latency (set/reset mix averages out across a block's bits).
    ``write_backpressure`` scales how much of the write occupancy is
    charged: the paper's Sniper setup buffers LLC writes off the
    critical path (0.0), a conservative memory system charges all of it
    (1.0).
    """
    read_hit_service = llc_model.tag_latency_s + llc_model.read_latency_s
    miss_service = llc_model.tag_latency_s
    write_service = llc_model.tag_latency_s + llc_model.mean_write_latency_s
    return (
        counts.read_hits * read_hit_service
        + counts.read_misses * miss_service
        + counts.data_writes * write_service * write_backpressure
    )


def resolve_timing(
    private: PrivateResult,
    counts: LLCCounts,
    llc_model: LLCModel,
    arch: ArchitectureConfig,
    iterations: int = 4,
) -> SystemTiming:
    """Fixed-point timing solve for one (workload, LLC) pair."""
    dram = arch.dram
    dram_latency = dram.base_latency_s
    busy = llc_bank_busy_s(
        counts, llc_model, write_backpressure=arch.llc_write_backpressure
    )
    llc_min_time = busy / arch.llc_banks
    traffic_bytes = (counts.dram_reads + counts.dram_writes) * arch.llc_block_bytes
    dram_min_time = traffic_bytes / dram.total_bandwidth

    runtime_s = 0.0
    utilization = 0.0
    breakdowns: List[CoreBreakdown] = []
    bound = "core"
    for _ in range(max(1, iterations)):
        breakdowns = []
        for core, counter in enumerate(private.per_core):
            mlp = (
                counts.per_core_mlp[core]
                if core < len(counts.per_core_mlp)
                else 1.0
            )
            breakdowns.append(
                _core_cycles(
                    instructions=counter.instructions,
                    l2_hits=counter.l2_hits,
                    llc_read_hits=_per_core(counts.per_core_read_hits, core),
                    llc_read_misses=_per_core(counts.per_core_read_misses, core),
                    mlp=mlp,
                    llc_model=llc_model,
                    arch=arch,
                    dram_latency_s=dram_latency,
                )
            )
        core_time = max(b.total_cycles for b in breakdowns) * arch.cycle_s
        runtime_s, bound = max(
            (core_time, "core"), (llc_min_time, "llc"), (dram_min_time, "dram")
        )
        utilization = min(
            dram.max_utilization,
            traffic_bytes / (runtime_s * dram.total_bandwidth) if runtime_s else 0.0,
        )
        dram_latency = dram.base_latency_s * (
            1.0 + dram.queue_factor * utilization / (1.0 - utilization)
        )

    return SystemTiming(
        runtime_s=runtime_s,
        core_breakdowns=breakdowns,
        dram_latency_s=dram_latency,
        dram_utilization=utilization,
        llc_busy_s=busy,
        bound=bound,
    )


def _per_core(values: List[int], core: int) -> int:
    return values[core] if core < len(values) else 0
