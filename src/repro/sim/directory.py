"""Full-map directory for private-cache coherence (Table IV, DRAM row).

The paper's Sniper configuration uses full-map directories at the
memory controllers.  In this trace-driven reproduction the directory's
observable effect is coherence traffic between private L2s: a store to a
block cached by other cores invalidates their copies (forcing later
re-misses), and a load to a block another core holds dirty forces a
downgrade writeback.  Both effects are tracked so multi-threaded
workloads see sharing-dependent LLC traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class DirectoryStats:
    """Coherence event counters."""

    invalidations_sent: int = 0
    downgrades_sent: int = 0
    sharing_misses: int = 0


class FullMapDirectory:
    """Tracks which cores' private hierarchies hold each block.

    The directory is conservative and block-grain: it does not model
    transient states or NACKs, only steady-state sharer sets and the
    owner (a core holding the block modifiable).
    """

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores
        self._sharers: Dict[int, Set[int]] = {}
        self._owner: Dict[int, int] = {}
        self.stats = DirectoryStats()

    def on_fill(self, core: int, block: int, exclusive: bool) -> List[int]:
        """Record a private fill; returns cores whose copies to invalidate.

        ``exclusive`` fills (stores) invalidate all other sharers; shared
        fills (loads) downgrade a dirty owner, if any.
        """
        sharers = self._sharers.setdefault(block, set())
        victims: List[int] = []
        if exclusive:
            victims = [c for c in sharers if c != core]
            if victims:
                self.stats.invalidations_sent += len(victims)
                self.stats.sharing_misses += 1
            sharers.clear()
            sharers.add(core)
            self._owner[block] = core
        else:
            owner = self._owner.get(block)
            if owner is not None and owner != core:
                self.stats.downgrades_sent += 1
                victims = [owner]
                self._owner.pop(block, None)
            sharers.add(core)
        return victims

    def on_evict(self, core: int, block: int) -> None:
        """Record that a core no longer holds a block."""
        sharers = self._sharers.get(block)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                self._sharers.pop(block, None)
        if self._owner.get(block) == core:
            self._owner.pop(block, None)

    def sharers_of(self, block: int) -> Set[int]:
        """Cores currently recorded as holding the block."""
        return set(self._sharers.get(block, ()))
