"""Set-associative write-back cache with LRU replacement.

The workhorse of the hierarchy simulation.  Implementation notes:

- Each set is a plain ``dict`` mapping tag -> dirty flag; Python dicts
  preserve insertion order, so LRU is maintained by deleting and
  re-inserting on touch (cheaper than ``OrderedDict.move_to_end`` for
  the small dicts cache sets are).
- Addresses are *block* addresses (byte address >> 6); the cache never
  sees offsets.

This class defines the replacement semantics every engine must match
bit-for-bit (see :mod:`repro.sim.engine`): set index is ``block %
n_sets``; the LRU victim is the least-recently *touched* line (empty
ways fill before any eviction); a hit refreshes recency and keeps the
dirty flag sticky (``dirty or is_write``); a miss installs the block
with the access's write flag.  The vector engine reproduces exactly
this with per-way age counters instead of dict order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access.

    Attributes
    ----------
    hit:
        Whether the block was present.
    dirty_victim:
        Block address of a dirty line evicted to make room, or None.
    """

    hit: bool
    dirty_victim: Optional[int]


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """A set-associative, write-back, write-allocate cache.

    Parameters
    ----------
    capacity_bytes / block_bytes / associativity:
        Geometry; capacity must be a whole number of sets.
    """

    def __init__(
        self, capacity_bytes: int, block_bytes: int, associativity: int
    ) -> None:
        if capacity_bytes % (block_bytes * associativity):
            raise ConfigurationError("capacity must be a whole number of sets")
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = capacity_bytes // (block_bytes * associativity)
        if self.n_sets <= 0:
            raise ConfigurationError("cache must have at least one set")
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity."""
        return self.n_sets * self.associativity * self.block_bytes

    def access(self, block: int, is_write: bool) -> "AccessOutcome":
        """Access one block; report hit status and any dirty eviction.

        On a hit the line is refreshed to MRU (and marked dirty on a
        write).  On a miss the line is allocated; if the set is full the
        LRU line is evicted and, when dirty, its block address is
        reported so the caller can write it back to the next level.
        """
        index = block % self.n_sets
        lines = self._sets[index]
        dirty = lines.get(block)
        if dirty is not None:
            # Hit: refresh LRU position.
            del lines[block]
            lines[block] = dirty or is_write
            self.stats.hits += 1
            return AccessOutcome(hit=True, dirty_victim=None)
        self.stats.misses += 1
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim_tag = next(iter(lines))
            victim_dirty = lines.pop(victim_tag)
            if victim_dirty:
                self.stats.writebacks += 1
                victim_block = victim_tag
        lines[block] = is_write
        return AccessOutcome(hit=False, dirty_victim=victim_block)

    def fill(self, block: int, dirty: bool = False) -> Optional[int]:
        """Insert a block without counting a demand access (prefetch or
        writeback-allocate path); returns the evicted dirty block."""
        index = block % self.n_sets
        lines = self._sets[index]
        if block in lines:
            was_dirty = lines.pop(block)
            lines[block] = was_dirty or dirty
            return None
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim_tag = next(iter(lines))
            victim_dirty = lines.pop(victim_tag)
            if victim_dirty:
                self.stats.writebacks += 1
                victim_block = victim_tag
        lines[block] = dirty
        return victim_block

    def contains(self, block: int) -> bool:
        """Presence check without LRU side effects."""
        return block in self._sets[block % self.n_sets]

    def invalidate(self, block: int) -> bool:
        """Drop a block (coherence); returns True if it was dirty.

        The dirty data is assumed to be forwarded to the requester /
        next level by the caller.
        """
        index = block % self.n_sets
        lines = self._sets[index]
        dirty = lines.pop(block, None)
        if dirty is None:
            return False
        self.stats.invalidations += 1
        return dirty

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(lines) for lines in self._sets)
