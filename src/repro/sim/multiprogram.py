"""Multi-programmed workload mixes.

LLC studies conventionally evaluate shared caches under *heterogeneous*
co-location: a different single-threaded benchmark per core, competing
for LLC capacity.  The paper runs homogeneous workloads; this extension
builds mixes from the same benchmark suite and reports the standard
multi-program metrics (weighted speedup against isolated runs), which is
where the dense fixed-area NVMs shine hardest — every co-runner's
working set lands in the same shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.nvsim.model import LLCModel
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.system import SimulationSession
from repro.trace.stream import Trace, interleave_threads
from repro.workloads.generators import DEFAULT_SEED, generate_trace


def build_mix(
    benchmarks: Sequence[str],
    n_accesses_each: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> Trace:
    """Interleave one single-threaded benchmark per core into one trace.

    Each benchmark keeps its own address space (they are already based
    at distinct regions) and becomes one thread of the merged trace.
    """
    if not benchmarks:
        raise WorkloadError("a mix needs at least one benchmark")
    per_thread: List[Trace] = []
    stripe = np.uint64(1) << np.uint64(44)  # private address space each
    for index, name in enumerate(benchmarks):
        trace = generate_trace(name, seed=seed, n_accesses=n_accesses_each)
        if trace.n_threads != 1:
            raise WorkloadError(
                f"mixes are built from single-threaded workloads; {name} has "
                f"{trace.n_threads} threads"
            )
        # Distinct virtual address spaces: co-located programs never
        # alias, even when two benchmarks use the same base regions.
        trace = Trace(
            addresses=trace.addresses + np.uint64(index) * stripe,
            writes=trace.writes,
            thread_ids=trace.thread_ids,
            gaps=trace.gaps,
            name=trace.name,
        )
        per_thread.append(trace)
    name = "+".join(benchmarks)
    return interleave_threads(per_thread, name=name)


@dataclass(frozen=True)
class MixResult:
    """Multi-program metrics for one mix on one LLC model."""

    mix: str
    llc_name: str
    runtime_s: float
    llc_energy_j: float
    per_benchmark_speedup: Dict[str, float]

    @property
    def weighted_speedup(self) -> float:
        """Sum of per-benchmark speedups vs their isolated runs (the
        standard system-throughput metric; n_cores = ideal)."""
        return float(sum(self.per_benchmark_speedup.values()))


def simulate_mix(
    benchmarks: Sequence[str],
    llc_model: LLCModel,
    arch: Optional[ArchitectureConfig] = None,
    n_accesses_each: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    configuration: str = "fixed-capacity",
) -> MixResult:
    """Simulate a co-located mix and compare against isolated runs.

    Per-benchmark speedup is (isolated runtime) / (shared runtime),
    where the isolated run gives the benchmark the whole machine and
    the shared run's per-core completion time is read from its core's
    cycle count.
    """
    arch = arch or gainestown(n_cores=max(1, len(benchmarks)))
    if arch.n_cores < len(benchmarks):
        raise WorkloadError("need at least one core per mix member")
    mix_trace = build_mix(benchmarks, n_accesses_each=n_accesses_each, seed=seed)
    shared = SimulationSession(mix_trace, arch=arch).run(llc_model, configuration)

    speedups: Dict[str, float] = {}
    for core, name in enumerate(benchmarks):
        isolated_trace = generate_trace(name, seed=seed, n_accesses=n_accesses_each)
        isolated = SimulationSession(isolated_trace, arch=arch).run(
            llc_model, configuration
        )
        shared_cycles = shared.timing.core_breakdowns[core].total_cycles
        isolated_cycles = max(
            b.total_cycles for b in isolated.timing.core_breakdowns
        )
        if shared_cycles <= 0:
            raise WorkloadError(f"core {core} ran no work in the mix")
        speedups[name] = isolated_cycles / shared_cycles

    return MixResult(
        mix=mix_trace.name,
        llc_name=llc_model.name,
        runtime_s=shared.runtime_s,
        llc_energy_j=shared.llc_energy_j,
        per_benchmark_speedup=speedups,
    )
