"""Alternative LLC replacement policies.

The paper's related-work survey opens with the LLC-management literature
(refs [1]-[5]: insertion, bypass and dead-block policies).  The baseline
simulator uses LRU; this module adds two standard alternatives so policy
sensitivity can be measured against the NVM results:

- :class:`RandomCache` — random victim selection (the lower bound a
  policy must beat);
- :class:`SRRIPCache` — static re-reference interval prediction
  (Jaleel-style 2-bit RRPV), which resists scans like the streaming
  components of our workloads.

All policies share :class:`repro.sim.cache.SetAssocCache`'s interface
(``access``/``fill``/``contains``/``invalidate``/``occupancy``/``stats``)
so they drop into the hierarchy and LLC replay unchanged.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.cache import AccessOutcome, CacheStats, SetAssocCache


class RandomCache:
    """Set-associative cache with uniform-random victim selection."""

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int,
        associativity: int,
        seed: int = 0xC0FFEE,
    ) -> None:
        if capacity_bytes % (block_bytes * associativity):
            raise ConfigurationError("capacity must be a whole number of sets")
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = capacity_bytes // (block_bytes * associativity)
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self._rng = random.Random(seed)
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity."""
        return self.n_sets * self.associativity * self.block_bytes

    def access(self, block: int, is_write: bool) -> AccessOutcome:
        """Access one block; random eviction on a full set."""
        lines = self._sets[block % self.n_sets]
        if block in lines:
            lines[block] = lines[block] or is_write
            self.stats.hits += 1
            return AccessOutcome(hit=True, dirty_victim=None)
        self.stats.misses += 1
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim = self._rng.choice(list(lines))
            victim_dirty = lines.pop(victim)
            if victim_dirty:
                self.stats.writebacks += 1
                victim_block = victim
        lines[block] = is_write
        return AccessOutcome(hit=False, dirty_victim=victim_block)

    def fill(self, block: int, dirty: bool = False) -> Optional[int]:
        """Insert without counting a demand access."""
        lines = self._sets[block % self.n_sets]
        if block in lines:
            lines[block] = lines[block] or dirty
            return None
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim = self._rng.choice(list(lines))
            victim_dirty = lines.pop(victim)
            if victim_dirty:
                self.stats.writebacks += 1
                victim_block = victim
        lines[block] = dirty
        return victim_block

    def contains(self, block: int) -> bool:
        """Presence check."""
        return block in self._sets[block % self.n_sets]

    def invalidate(self, block: int) -> bool:
        """Drop a block; returns True if it was dirty."""
        dirty = self._sets[block % self.n_sets].pop(block, None)
        if dirty is None:
            return False
        self.stats.invalidations += 1
        return dirty

    def occupancy(self) -> int:
        """Valid lines held."""
        return sum(len(lines) for lines in self._sets)


#: SRRIP re-reference prediction values (2-bit).
_RRPV_MAX = 3
_RRPV_INSERT = 2  # long re-reference interval on insertion
_RRPV_HIT = 0  # near-immediate on hit


class SRRIPCache:
    """Static RRIP (2-bit) set-associative cache.

    Lines carry a re-reference prediction value; victims are lines with
    the maximum RRPV, aging the set when none qualifies.  Scanning
    streams insert at a long interval and get evicted before they
    displace the reused working set.
    """

    def __init__(
        self, capacity_bytes: int, block_bytes: int, associativity: int
    ) -> None:
        if capacity_bytes % (block_bytes * associativity):
            raise ConfigurationError("capacity must be a whole number of sets")
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = capacity_bytes // (block_bytes * associativity)
        # tag -> [rrpv, dirty]
        self._sets: List[Dict[int, List[int]]] = [
            dict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity."""
        return self.n_sets * self.associativity * self.block_bytes

    def _evict(self, lines: Dict[int, List[int]]) -> Optional[int]:
        """Pick and remove an RRPV-max victim; return it if dirty."""
        while True:
            for tag, state in lines.items():
                if state[0] >= _RRPV_MAX:
                    dirty = bool(state[1])
                    del lines[tag]
                    if dirty:
                        self.stats.writebacks += 1
                        return tag
                    return None
            for state in lines.values():
                state[0] += 1

    def access(self, block: int, is_write: bool) -> AccessOutcome:
        """Access one block under SRRIP."""
        lines = self._sets[block % self.n_sets]
        state = lines.get(block)
        if state is not None:
            state[0] = _RRPV_HIT
            state[1] = state[1] or int(is_write)
            self.stats.hits += 1
            return AccessOutcome(hit=True, dirty_victim=None)
        self.stats.misses += 1
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim_block = self._evict(lines)
        lines[block] = [_RRPV_INSERT, int(is_write)]
        return AccessOutcome(hit=False, dirty_victim=victim_block)

    def fill(self, block: int, dirty: bool = False) -> Optional[int]:
        """Insert without counting a demand access."""
        lines = self._sets[block % self.n_sets]
        state = lines.get(block)
        if state is not None:
            state[1] = state[1] or int(dirty)
            return None
        victim_block: Optional[int] = None
        if len(lines) >= self.associativity:
            victim_block = self._evict(lines)
        lines[block] = [_RRPV_INSERT, int(dirty)]
        return victim_block

    def contains(self, block: int) -> bool:
        """Presence check."""
        return block in self._sets[block % self.n_sets]

    def invalidate(self, block: int) -> bool:
        """Drop a block; returns True if it was dirty."""
        state = self._sets[block % self.n_sets].pop(block, None)
        if state is None:
            return False
        self.stats.invalidations += 1
        return bool(state[1])

    def occupancy(self) -> int:
        """Valid lines held."""
        return sum(len(lines) for lines in self._sets)


#: Replacement policies available to :func:`make_cache`.
POLICIES = ("lru", "random", "srrip")


def make_cache(
    capacity_bytes: int,
    block_bytes: int,
    associativity: int,
    policy: str = "lru",
):
    """Construct a cache with the requested replacement policy."""
    if policy == "lru":
        return SetAssocCache(capacity_bytes, block_bytes, associativity)
    if policy == "random":
        return RandomCache(capacity_bytes, block_bytes, associativity)
    if policy == "srrip":
        return SRRIPCache(capacity_bytes, block_bytes, associativity)
    raise ConfigurationError(
        f"unknown replacement policy {policy!r}; known: {', '.join(POLICIES)}"
    )
