"""Memory entropy metrics (paper Section IV-B, equation (9)).

*Global* memory entropy is the Shannon entropy of the full access-address
distribution — a measure of temporal locality (frequent re-touching of
few addresses lowers it).  *Local* memory entropy drops the ``M`` lowest
order bits first (the paper uses M=10, reflecting a 1 KB page), measuring
spatial locality across page-sized regions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

#: The paper's choice of skipped low-order bits for local entropy.
LOCAL_ENTROPY_SKIP_BITS = 10


def shannon_entropy(addresses: np.ndarray) -> float:
    """Shannon entropy (bits) of an address sample (equation (9)).

    ``H = -sum_i p(x_i) log2 p(x_i)`` where ``p(x_i)`` is the empirical
    frequency of address ``x_i`` in the sample.
    """
    if len(addresses) == 0:
        return 0.0
    _, counts = np.unique(addresses, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def global_entropy(addresses: np.ndarray) -> float:
    """Global memory entropy: Shannon entropy over raw addresses."""
    return shannon_entropy(np.asarray(addresses, dtype=np.uint64))


def local_entropy(
    addresses: np.ndarray, skip_bits: int = LOCAL_ENTROPY_SKIP_BITS
) -> float:
    """Local memory entropy: Shannon entropy with low bits dropped.

    Skipping ``skip_bits`` low-order bits aggregates addresses into
    2^skip_bits-byte regions, so the metric reflects how accesses spread
    across pages rather than within them.
    """
    if skip_bits < 0:
        raise TraceError("skip_bits must be nonnegative")
    addresses = np.asarray(addresses, dtype=np.uint64)
    return shannon_entropy(addresses >> np.uint64(skip_bits))


def max_entropy(n_unique: int) -> float:
    """Upper bound on entropy for a given unique-address count."""
    if n_unique <= 1:
        return 0.0
    return float(np.log2(n_unique))
