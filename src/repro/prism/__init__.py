"""PRISM-equivalent workload characterization (paper Section IV-B)."""

from repro.prism.entropy import (
    LOCAL_ENTROPY_SKIP_BITS,
    global_entropy,
    local_entropy,
    max_entropy,
    shannon_entropy,
)
from repro.prism.footprint import (
    WORKING_SET_COVERAGE,
    coverage_footprint,
    total_footprint,
    unique_footprint,
)
from repro.prism.reuse import (
    ReuseProfile,
    capacity_knee_blocks,
    reuse_profile,
)
from repro.prism.profile import (
    FEATURE_LABELS,
    FEATURE_NAMES,
    WorkloadFeatures,
    extract_features,
    feature_matrix,
)

__all__ = [
    "LOCAL_ENTROPY_SKIP_BITS",
    "global_entropy",
    "local_entropy",
    "max_entropy",
    "shannon_entropy",
    "WORKING_SET_COVERAGE",
    "coverage_footprint",
    "total_footprint",
    "unique_footprint",
    "FEATURE_LABELS",
    "FEATURE_NAMES",
    "WorkloadFeatures",
    "extract_features",
    "feature_matrix",
    "ReuseProfile",
    "capacity_knee_blocks",
    "reuse_profile",
]
