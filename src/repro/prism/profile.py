"""Workload feature extraction — the PRISM-equivalent pipeline.

Produces the ten architecture-agnostic features of Table VI for a
memory trace, split by reads and writes exactly as the paper splits
them to expose NVM read/write asymmetry:

========================  =====================================
feature                   Table VI column
========================  =====================================
``read_global_entropy``   ``H_rg``
``read_local_entropy``    ``H_rl``
``write_global_entropy``  ``H_wg``
``write_local_entropy``   ``H_wl``
``unique_reads``          ``r_uniq``
``unique_writes``         ``w_uniq``
``footprint90_reads``     ``90% ft_r``
``footprint90_writes``    ``90% ft_w``
``total_reads``           ``r_total``
``total_writes``          ``w_total``
========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

import numpy as np

from repro.prism.entropy import LOCAL_ENTROPY_SKIP_BITS, global_entropy, local_entropy
from repro.prism.footprint import (
    WORKING_SET_COVERAGE,
    coverage_footprint,
    total_footprint,
    unique_footprint,
)
from repro.trace.stream import Trace

#: Feature order used everywhere (matrices, heatmaps, Table VI columns).
FEATURE_NAMES: Tuple[str, ...] = (
    "read_global_entropy",
    "read_local_entropy",
    "write_global_entropy",
    "write_local_entropy",
    "unique_reads",
    "unique_writes",
    "footprint90_reads",
    "footprint90_writes",
    "total_reads",
    "total_writes",
)

#: Table VI's abbreviated column labels, index-aligned with FEATURE_NAMES.
FEATURE_LABELS: Tuple[str, ...] = (
    "H_rg",
    "H_rl",
    "H_wg",
    "H_wl",
    "r_uniq",
    "w_uniq",
    "90%ft_r",
    "90%ft_w",
    "r_total",
    "w_total",
)


@dataclass(frozen=True)
class WorkloadFeatures:
    """The ten architecture-agnostic features of one workload."""

    name: str
    read_global_entropy: float
    read_local_entropy: float
    write_global_entropy: float
    write_local_entropy: float
    unique_reads: float
    unique_writes: float
    footprint90_reads: float
    footprint90_writes: float
    total_reads: float
    total_writes: float

    def as_array(self) -> np.ndarray:
        """Feature vector in :data:`FEATURE_NAMES` order."""
        return np.array([getattr(self, f) for f in FEATURE_NAMES], dtype=np.float64)

    def as_dict(self) -> Dict[str, float]:
        """Feature mapping in :data:`FEATURE_NAMES` order."""
        return {f: float(getattr(self, f)) for f in FEATURE_NAMES}

    @property
    def write_intensity(self) -> float:
        """Fraction of accesses that are writes."""
        total = self.total_reads + self.total_writes
        if total == 0:
            return 0.0
        return self.total_writes / total


def extract_features(
    trace: Trace,
    skip_bits: int = LOCAL_ENTROPY_SKIP_BITS,
    coverage: float = WORKING_SET_COVERAGE,
) -> WorkloadFeatures:
    """Compute all Table VI features for a trace.

    Reads and writes are profiled separately, as in the paper, so the
    correlation framework can attribute energy to write-side behaviour.
    """
    read_addresses = trace.addresses[~trace.writes]
    write_addresses = trace.addresses[trace.writes]
    return WorkloadFeatures(
        name=trace.name,
        read_global_entropy=global_entropy(read_addresses),
        read_local_entropy=local_entropy(read_addresses, skip_bits),
        write_global_entropy=global_entropy(write_addresses),
        write_local_entropy=local_entropy(write_addresses, skip_bits),
        unique_reads=unique_footprint(read_addresses),
        unique_writes=unique_footprint(write_addresses),
        footprint90_reads=coverage_footprint(read_addresses, coverage),
        footprint90_writes=coverage_footprint(write_addresses, coverage),
        total_reads=total_footprint(read_addresses),
        total_writes=total_footprint(write_addresses),
    )


def feature_matrix(profiles: List[WorkloadFeatures]) -> np.ndarray:
    """Stack feature vectors into a (workloads x features) matrix."""
    return np.vstack([p.as_array() for p in profiles])
