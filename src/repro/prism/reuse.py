"""Reuse-distance analysis and miss-ratio curves.

The fixed-area study's central question — "how much capacity does this
workload reward?" — is answered exactly by the LRU stack-distance
histogram: an access with stack distance ``d`` hits in any
fully-associative LRU cache of more than ``d`` blocks.  This module
computes the histogram in one pass (Olken's algorithm: a last-access
table plus a Fenwick tree counting still-most-recent markers, O(N log N))
and derives the miss-ratio curve the capacity planner reads.

This is an *analysis* companion to the cache simulator: the simulator
answers with set conflicts and real associativity, the MRC shows the
idealised capacity knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, n: int) -> None:
        self._tree = [0] * (n + 1)
        self._n = n

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._n:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, low: int, high: int) -> int:
        """Sum of entries [low, high]."""
        if high < low:
            return 0
        return self.prefix_sum(high) - (self.prefix_sum(low - 1) if low else 0)


@dataclass(frozen=True)
class ReuseProfile:
    """Stack-distance histogram of one block-granular access stream.

    ``distances[i]`` counts accesses with stack distance ``i`` (number
    of distinct blocks touched since the previous access to the same
    block); cold (first-touch) accesses are counted separately.
    """

    distances: np.ndarray
    cold_accesses: int
    n_accesses: int

    @property
    def reuse_accesses(self) -> int:
        """Accesses with a finite stack distance."""
        return self.n_accesses - self.cold_accesses

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Idealised (fully-associative LRU) miss ratio at a capacity.

        Misses = cold accesses + reuses at distance >= capacity.
        """
        if capacity_blocks <= 0:
            return 1.0
        if not self.n_accesses:
            return 0.0
        hits = int(self.distances[:capacity_blocks].sum())
        # Compute misses integer-side: ``1.0 - hits/n`` rounds (e.g.
        # ``1.0 - 4/5 = 0.19999…``) and breaks exact-count identities.
        return (self.n_accesses - hits) / self.n_accesses

    def miss_ratio_curve(
        self, capacities_blocks: Sequence[int]
    ) -> List[float]:
        """Miss ratio at each capacity (the MRC)."""
        return [self.miss_ratio(c) for c in capacities_blocks]

    def working_set_blocks(self, coverage: float = 0.9) -> int:
        """Smallest capacity whose hit mass reaches ``coverage`` of the
        achievable (non-cold) hits — a reuse-aware working-set size."""
        if not 0.0 < coverage <= 1.0:
            raise TraceError("coverage must be in (0, 1]")
        total = self.distances.sum()
        if total == 0:
            return 0
        cumulative = np.cumsum(self.distances)
        threshold = coverage * total
        return int(np.searchsorted(cumulative, threshold) + 1)


def reuse_profile(
    trace_or_blocks,
    max_tracked_distance: Optional[int] = None,
) -> ReuseProfile:
    """Compute the stack-distance histogram of a trace or block array.

    ``max_tracked_distance`` caps the histogram length (distances beyond
    it land in the final bucket); default tracks every distance up to
    the stream's unique-block count.
    """
    if isinstance(trace_or_blocks, Trace):
        blocks = np.asarray(trace_or_blocks.block_addresses, dtype=np.uint64)
    else:
        blocks = np.asarray(trace_or_blocks, dtype=np.uint64)
    n = len(blocks)
    if n == 0:
        return ReuseProfile(np.zeros(1, dtype=np.int64), 0, 0)

    unique_count = len(np.unique(blocks))
    limit = max_tracked_distance or unique_count
    limit = max(1, min(limit, unique_count))
    histogram = np.zeros(limit + 1, dtype=np.int64)

    tree = _Fenwick(n)
    last_seen: Dict[int, int] = {}
    cold = 0
    for t in range(n):
        block = int(blocks[t])
        previous = last_seen.get(block)
        if previous is None:
            cold += 1
        else:
            # Distinct blocks since previous touch = markers in (prev, t).
            distance = tree.range_sum(previous + 1, t - 1)
            histogram[min(distance, limit)] += 1
            tree.add(previous, -1)
        tree.add(t, 1)
        last_seen[block] = t

    return ReuseProfile(distances=histogram, cold_accesses=cold, n_accesses=n)


#: Version stamp of :class:`StreamReuseProfile`'s layout and semantics.
#: Part of the replay-cache key (:meth:`repro.sim.replay_cache.ReplayCache.profile_key`)
#: so a cached profile is never reused across algorithm changes.
STREAM_PROFILE_VERSION = 1

#: Stack-distance sentinel for cold (first-touch) accesses: larger than
#: any real capacity in blocks, so ``distance >= capacity`` classifies
#: colds as misses at every capacity.
COLD_DISTANCE = np.int64(2**62)


@dataclass(frozen=True)
class StreamReuseProfile:
    """Capacity-parameterised reuse summary of one LLC access stream.

    One pass over the post-L2 stream (reads *and* writes share the LRU
    stack) yields everything the analytical surrogate
    (:mod:`repro.analytic`) needs to predict fully-associative LRU
    counts at *any* capacity:

    - ``read_dists`` / ``write_dists``: per-access stack distances in
      stream order (``COLD_DISTANCE`` for first touches), so hits at
      capacity ``B`` blocks are exactly ``distance < B``;
    - ``read_cores`` / ``read_positions``: core id and instruction
      position of every read, for per-core splits and MLP clustering;
    - ``dirty_curve``: ``dirty_curve[B]`` is the exact number of dirty
      evictions a fully-associative LRU cache of ``B`` blocks performs
      on this stream (derived access-by-access, see ``docs/DSE.md``).
    """

    version: int
    n_cores: int
    read_dists: np.ndarray
    read_cores: np.ndarray
    read_positions: np.ndarray
    write_dists: np.ndarray
    dirty_curve: np.ndarray
    unique_blocks: int

    @property
    def n_reads(self) -> int:
        return len(self.read_dists)

    @property
    def n_writes(self) -> int:
        return len(self.write_dists)

    @property
    def n_accesses(self) -> int:
        return self.n_reads + self.n_writes

    @property
    def cold_reads(self) -> int:
        return int((self.read_dists == COLD_DISTANCE).sum())

    @property
    def cold_writes(self) -> int:
        return int((self.write_dists == COLD_DISTANCE).sum())

    def read_hits_at(self, capacity_blocks: int) -> int:
        """Reads hitting a fully-associative LRU cache of ``B`` blocks."""
        if capacity_blocks <= 0:
            return 0
        return int((self.read_dists < capacity_blocks).sum())

    def write_hits_at(self, capacity_blocks: int) -> int:
        """Writes hitting a fully-associative LRU cache of ``B`` blocks."""
        if capacity_blocks <= 0:
            return 0
        return int((self.write_dists < capacity_blocks).sum())

    def dirty_evictions_at(self, capacity_blocks: int) -> int:
        """Exact FA-LRU dirty-eviction count at ``B`` blocks."""
        if capacity_blocks <= 0 or not len(self.dirty_curve):
            return 0
        index = min(capacity_blocks, len(self.dirty_curve) - 1)
        return int(self.dirty_curve[index])

    def per_core_read_hits(self, capacity_blocks: int) -> List[int]:
        """Per-core read hits at ``B`` blocks (sums to ``read_hits_at``)."""
        hit = self.read_dists < capacity_blocks
        return np.bincount(
            self.read_cores[hit], minlength=self.n_cores
        ).tolist()

    def per_core_miss_positions(self, capacity_blocks: int) -> List[np.ndarray]:
        """Instruction positions of predicted read misses, per core."""
        miss = self.read_dists >= capacity_blocks
        return [
            self.read_positions[miss & (self.read_cores == core)]
            for core in range(self.n_cores)
        ]

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Idealised miss ratio over all accesses at ``B`` blocks."""
        if not self.n_accesses:
            return 0.0
        hits = self.read_hits_at(capacity_blocks) + self.write_hits_at(
            capacity_blocks
        )
        return (self.n_accesses - hits) / self.n_accesses


def stream_reuse_profile(stream, n_cores: int) -> StreamReuseProfile:
    """One-pass analytic profile of an LLC stream (Olken + dirty curve).

    Accepts an :class:`~repro.sim.hierarchy.LLCStream` (or any object
    with ``blocks``/``writes``/``cores``/``instr_positions`` arrays).
    Beyond the classic stack-distance histogram, it derives the exact
    fully-associative dirty-eviction curve: for each reuse access ``j``
    at distance ``d_j`` to a block last written at ``m``, the eviction
    preceding ``j`` carries a dirty line exactly for capacities
    ``M_j < B <= d_j`` where ``M_j`` is the largest distance of the
    block's accesses strictly after ``m``; accumulating those intervals
    in a difference array gives ``dirty_curve`` in O(N log N) total.
    Blocks left dirty at end-of-stream contribute only when the
    forward distance (distinct blocks after their last access) actually
    evicts them — mirroring the simulator, which never flushes.
    """
    blocks = np.asarray(stream.blocks, dtype=np.uint64)
    writes = np.asarray(stream.writes, dtype=bool)
    cores = np.asarray(stream.cores, dtype=np.int64)
    positions = np.asarray(stream.instr_positions, dtype=np.uint64)
    n = len(blocks)
    unique_count = len(np.unique(blocks)) if n else 0

    dists = np.empty(n, dtype=np.int64)
    # Difference array over capacities 0..unique_count (+1 for the
    # exclusive end of the last interval).
    dirty_diff = np.zeros(unique_count + 2, dtype=np.int64)

    tree = _Fenwick(n)
    last_seen: Dict[int, int] = {}
    # Per-block dirty state: max stack distance of the block's accesses
    # strictly after its most recent write (absent = never written).
    dist_since_write: Dict[int, int] = {}
    for t in range(n):
        block = int(blocks[t])
        previous = last_seen.get(block)
        if previous is None:
            distance = None
            dists[t] = COLD_DISTANCE
        else:
            distance = tree.range_sum(previous + 1, t - 1)
            dists[t] = distance
            since_write = dist_since_write.get(block)
            if since_write is not None and since_write < distance:
                # Dirty eviction precedes this access for every
                # capacity in (since_write, distance].
                dirty_diff[since_write + 1] += 1
                dirty_diff[distance + 1] -= 1
            tree.add(previous, -1)
        tree.add(t, 1)
        last_seen[block] = t
        if writes[t]:
            dist_since_write[block] = 0
        elif distance is not None and block in dist_since_write:
            if distance > dist_since_write[block]:
                dist_since_write[block] = distance

    # Tail: blocks dirty at end-of-stream are written back only if some
    # later fill actually evicts them.  The forward distance (distinct
    # blocks touched after the block's last access) decides that.
    seen: set = set()
    for t in range(n - 1, -1, -1):
        block = int(blocks[t])
        if block in seen:
            continue
        since_write = dist_since_write.get(block)
        if since_write is not None:
            forward = len(seen)
            if since_write < forward:
                dirty_diff[since_write + 1] += 1
                dirty_diff[forward + 1] -= 1
        seen.add(block)

    reads = ~writes
    return StreamReuseProfile(
        version=STREAM_PROFILE_VERSION,
        n_cores=n_cores,
        read_dists=dists[reads],
        read_cores=cores[reads],
        read_positions=positions[reads],
        write_dists=dists[writes],
        dirty_curve=np.cumsum(dirty_diff),
        unique_blocks=unique_count,
    )


def capacity_knee_blocks(profile: ReuseProfile, drop: float = 0.5) -> Optional[int]:
    """Smallest capacity recovering ``drop`` of the reducible misses.

    Reducible misses are those any finite LRU capacity can remove (cold
    misses are not).  Returns None for a stream with no reuse at all —
    no capacity helps it.  A compact scalar for "where does more LLC
    stop paying" — the quantity the fixed-area study varies technology
    to exploit.
    """
    if profile.reuse_accesses == 0:
        return None
    base = profile.miss_ratio(1)
    floor = profile.miss_ratio(len(profile.distances))
    target = base - drop * (base - floor)
    # Binary search over the histogram's support (MRC is monotone).
    low, high = 1, len(profile.distances)
    while low < high:
        mid = (low + high) // 2
        if profile.miss_ratio(mid) <= target:
            high = mid
        else:
            low = mid + 1
    return low
