"""Reuse-distance analysis and miss-ratio curves.

The fixed-area study's central question — "how much capacity does this
workload reward?" — is answered exactly by the LRU stack-distance
histogram: an access with stack distance ``d`` hits in any
fully-associative LRU cache of more than ``d`` blocks.  This module
computes the histogram in one pass (Olken's algorithm: a last-access
table plus a Fenwick tree counting still-most-recent markers, O(N log N))
and derives the miss-ratio curve the capacity planner reads.

This is an *analysis* companion to the cache simulator: the simulator
answers with set conflicts and real associativity, the MRC shows the
idealised capacity knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, n: int) -> None:
        self._tree = [0] * (n + 1)
        self._n = n

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._n:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, low: int, high: int) -> int:
        """Sum of entries [low, high]."""
        if high < low:
            return 0
        return self.prefix_sum(high) - (self.prefix_sum(low - 1) if low else 0)


@dataclass(frozen=True)
class ReuseProfile:
    """Stack-distance histogram of one block-granular access stream.

    ``distances[i]`` counts accesses with stack distance ``i`` (number
    of distinct blocks touched since the previous access to the same
    block); cold (first-touch) accesses are counted separately.
    """

    distances: np.ndarray
    cold_accesses: int
    n_accesses: int

    @property
    def reuse_accesses(self) -> int:
        """Accesses with a finite stack distance."""
        return self.n_accesses - self.cold_accesses

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Idealised (fully-associative LRU) miss ratio at a capacity.

        Misses = cold accesses + reuses at distance >= capacity.
        """
        if capacity_blocks <= 0:
            return 1.0
        if not self.n_accesses:
            return 0.0
        hits = int(self.distances[:capacity_blocks].sum())
        # Compute misses integer-side: ``1.0 - hits/n`` rounds (e.g.
        # ``1.0 - 4/5 = 0.19999…``) and breaks exact-count identities.
        return (self.n_accesses - hits) / self.n_accesses

    def miss_ratio_curve(
        self, capacities_blocks: Sequence[int]
    ) -> List[float]:
        """Miss ratio at each capacity (the MRC)."""
        return [self.miss_ratio(c) for c in capacities_blocks]

    def working_set_blocks(self, coverage: float = 0.9) -> int:
        """Smallest capacity whose hit mass reaches ``coverage`` of the
        achievable (non-cold) hits — a reuse-aware working-set size."""
        if not 0.0 < coverage <= 1.0:
            raise TraceError("coverage must be in (0, 1]")
        total = self.distances.sum()
        if total == 0:
            return 0
        cumulative = np.cumsum(self.distances)
        threshold = coverage * total
        return int(np.searchsorted(cumulative, threshold) + 1)


def reuse_profile(
    trace_or_blocks,
    max_tracked_distance: Optional[int] = None,
) -> ReuseProfile:
    """Compute the stack-distance histogram of a trace or block array.

    ``max_tracked_distance`` caps the histogram length (distances beyond
    it land in the final bucket); default tracks every distance up to
    the stream's unique-block count.
    """
    if isinstance(trace_or_blocks, Trace):
        blocks = np.asarray(trace_or_blocks.block_addresses, dtype=np.uint64)
    else:
        blocks = np.asarray(trace_or_blocks, dtype=np.uint64)
    n = len(blocks)
    if n == 0:
        return ReuseProfile(np.zeros(1, dtype=np.int64), 0, 0)

    unique_count = len(np.unique(blocks))
    limit = max_tracked_distance or unique_count
    limit = max(1, min(limit, unique_count))
    histogram = np.zeros(limit + 1, dtype=np.int64)

    tree = _Fenwick(n)
    last_seen: Dict[int, int] = {}
    cold = 0
    for t in range(n):
        block = int(blocks[t])
        previous = last_seen.get(block)
        if previous is None:
            cold += 1
        else:
            # Distinct blocks since previous touch = markers in (prev, t).
            distance = tree.range_sum(previous + 1, t - 1)
            histogram[min(distance, limit)] += 1
            tree.add(previous, -1)
        tree.add(t, 1)
        last_seen[block] = t

    return ReuseProfile(distances=histogram, cold_accesses=cold, n_accesses=n)


def capacity_knee_blocks(profile: ReuseProfile, drop: float = 0.5) -> Optional[int]:
    """Smallest capacity recovering ``drop`` of the reducible misses.

    Reducible misses are those any finite LRU capacity can remove (cold
    misses are not).  Returns None for a stream with no reuse at all —
    no capacity helps it.  A compact scalar for "where does more LLC
    stop paying" — the quantity the fixed-area study varies technology
    to exploit.
    """
    if profile.reuse_accesses == 0:
        return None
    base = profile.miss_ratio(1)
    floor = profile.miss_ratio(len(profile.distances))
    target = base - drop * (base - floor)
    # Binary search over the histogram's support (MRC is monotone).
    low, high = 1, len(profile.distances)
    while low < high:
        mid = (low + high) // 2
        if profile.miss_ratio(mid) <= target:
            high = mid
        else:
            low = mid + 1
    return low
