"""Footprint metrics (paper Section IV-B).

- *unique footprint*: distinct addresses touched over the execution;
- *90% footprint*: the number of distinct addresses, taken from most- to
  least-accessed, needed to cover 90% of all accesses — an estimate of
  the working set;
- *total footprint*: the raw access count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

#: The working-set coverage threshold the paper uses.
WORKING_SET_COVERAGE = 0.90


def unique_footprint(addresses: np.ndarray) -> int:
    """Number of distinct addresses in the sample."""
    if len(addresses) == 0:
        return 0
    return int(len(np.unique(np.asarray(addresses, dtype=np.uint64))))


def coverage_footprint(
    addresses: np.ndarray, coverage: float = WORKING_SET_COVERAGE
) -> int:
    """Distinct addresses covering ``coverage`` of all accesses.

    Addresses are ranked by access count, descending; the footprint is
    the smallest prefix of that ranking whose cumulative count reaches
    ``coverage`` of the total (the paper's "90% memory footprint").
    """
    if not 0.0 < coverage <= 1.0:
        raise TraceError("coverage must be in (0, 1]")
    if len(addresses) == 0:
        return 0
    _, counts = np.unique(np.asarray(addresses, dtype=np.uint64), return_counts=True)
    counts = np.sort(counts)[::-1]
    cumulative = np.cumsum(counts)
    threshold = coverage * cumulative[-1]
    return int(np.searchsorted(cumulative, threshold) + 1)


def total_footprint(addresses: np.ndarray) -> int:
    """Total number of accesses (the paper's ``r_total`` / ``w_total``)."""
    return int(len(addresses))
