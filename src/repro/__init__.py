"""repro — reproduction of "Evaluation of Non-Volatile Memory Based Last
Level Cache Given Modern Use Case Behavior" (Hankin et al., IISWC 2019).

Subpackages
-----------
- :mod:`repro.cells` — NVM cell models and modeling heuristics (Table II)
- :mod:`repro.nvsim` — circuit model + published LLC models (Table III)
- :mod:`repro.trace` — memory traces and synthetic stream primitives
- :mod:`repro.workloads` — benchmark profiles and generators (Tables V/VI)
- :mod:`repro.prism` — architecture-agnostic workload features
- :mod:`repro.sim` — multicore system simulator (Table IV)
- :mod:`repro.correlate` — feature/energy/speedup correlation (Figure 4)
- :mod:`repro.endurance` — write endurance and lifetime (Section VII)
- :mod:`repro.techniques` — NVM-friendly LLC management techniques
- :mod:`repro.experiments` — one driver per paper table and figure
- :mod:`repro.obs` — run telemetry, tracing spans and run manifests

Quickstart
----------
>>> from repro import nvsim, sim, workloads
>>> trace = workloads.generate_trace("leela")
>>> llc = nvsim.published_model("Xue_S", "fixed-capacity")
>>> result = sim.simulate_system(trace, llc)
>>> result.llc_energy_j > 0
True
"""

__version__ = "1.0.0"

from repro import (
    cells,
    correlate,
    endurance,
    errors,
    nvsim,
    obs,
    prism,
    report,
    sim,
    techniques,
    trace,
    units,
    workloads,
)

__all__ = [
    "cells",
    "correlate",
    "endurance",
    "errors",
    "nvsim",
    "obs",
    "prism",
    "report",
    "sim",
    "techniques",
    "trace",
    "units",
    "workloads",
    "__version__",
]
