"""``repro-cli`` — task-oriented command line for the library.

Subcommands (each prints a small report to stdout):

- ``characterize`` — PRISM features for a suite workload or a trace file
- ``simulate``     — run a workload on an LLC model vs the SRAM baseline
- ``model``        — generate an LLC model from a library cell
- ``lifetime``     — project LLC lifetime for a workload on an NVM
- ``techniques``   — evaluate the management techniques on a workload
- ``workloads``    — list the benchmark suite
- ``cache``        — inspect/clear the on-disk replay cache
- ``doctor``       — self-check the installation (environment, cell
  library, model generation, a golden-trace sweep)
- ``serve``        — run the experiment service daemon (:mod:`repro.serve`)
- ``router``       — run the fleet front end over existing shards
- ``fleet``        — launch N shards + shared store + router in one go
- ``loadgen``      — offer a declarative load scenario to a target
  (:mod:`repro.loadgen`), optionally sweeping shard counts
- ``submit``       — submit a job to a running service (``--shards``
  routes client-side over the consistent-hash ring)
- ``status``       — poll the service (one job, or every job + health)
- ``fetch``        — fetch a finished job's result payload

The global ``--metrics`` flag (before the subcommand) collects
:mod:`repro.obs` telemetry for the invocation — replay events, cache
hits, engine usage — and prints the summary to stderr afterwards.
The global ``--validate`` flag (or ``REPRO_VALIDATE``) selects the
input/output validation policy: ``strict`` (default), ``lenient`` or
``off`` — see :mod:`repro.validate`.

``repro-experiments`` (see :mod:`repro.experiments.runner`) remains the
paper-regeneration entry point; this CLI serves ad-hoc use.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

from repro import units
from repro.cells.library import cell_by_name
from repro.errors import ReproError, render_error
from repro.nvsim.config import CacheDesign
from repro.nvsim.model import generate_llc_model
from repro.nvsim.published import published_model, sram_baseline
from repro.prism.profile import FEATURE_NAMES, extract_features
from repro.sim.results import normalize
from repro.sim.system import SimulationSession
from repro.trace.io import load_npz, parse_text
from repro.workloads.generators import generate_trace
from repro.workloads.profiles import PROFILES
from repro.workloads.registry import all_benchmarks


def _get_trace(args: argparse.Namespace):
    """Resolve --workload / --trace-file into a Trace."""
    if getattr(args, "trace_file", None):
        path = args.trace_file
        if path.endswith(".npz"):
            return load_npz(path)
        return parse_text(path, name=path)
    n = getattr(args, "accesses", None)
    return generate_trace(args.workload, n_accesses=n)


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'suite':10s} {'threads':>7s} {'paper mpki':>10s}  description")
    for name in all_benchmarks():
        bench = PROFILES[name]
        print(
            f"{name:12s} {bench.suite:10s} {bench.n_threads:7d} "
            f"{bench.paper_mpki:10.1f}  {bench.description}"
        )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    trace = _get_trace(args)
    features = extract_features(trace)
    print(f"workload: {trace.name or '(trace file)'}  accesses: {len(trace):,}")
    for feature in FEATURE_NAMES:
        print(f"  {feature:24s} {getattr(features, feature):14.3f}")
    print(f"  {'write_intensity':24s} {features.write_intensity:14.3f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _get_trace(args)
    session = SimulationSession(trace)
    model = published_model(args.llc, args.configuration)
    baseline = session.run(sram_baseline(args.configuration), args.configuration)
    result = session.run(model, args.configuration)
    norm = normalize(result, baseline)
    print(f"workload {trace.name}: {model.name} vs SRAM ({args.configuration})")
    print(f"  runtime    {result.runtime_s * 1e6:10.1f} us  (SRAM {baseline.runtime_s * 1e6:.1f} us)")
    print(f"  LLC energy {result.llc_energy_j * 1e6:10.1f} uJ  (SRAM {baseline.llc_energy_j * 1e6:.1f} uJ)")
    print(f"  mpki       {result.mpki:10.2f}")
    print(f"  speedup      {norm.speedup:8.3f}")
    print(f"  energy ratio {norm.energy_ratio:8.3f}")
    print(f"  ED^2P ratio  {norm.ed2p_ratio:8.3f}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    cell = cell_by_name(args.cell)
    design = CacheDesign(capacity_bytes=int(args.capacity_mb * units.MB))
    model = generate_llc_model(cell, design)
    print(f"{model.name} @ {model.capacity_mb:g} MB ({model.cell_class.value})")
    print(f"  area        {model.area_mm2:10.3f} mm^2")
    print(f"  tag         {model.tag_latency_s * 1e9:10.3f} ns")
    print(f"  read        {model.read_latency_s * 1e9:10.3f} ns")
    print(f"  write       {model.write_latency_s * 1e9:10.3f} ns (set "
          f"{model.set_latency_s * 1e9:.3f} / reset {model.reset_latency_s * 1e9:.3f})")
    print(f"  E_hit       {model.hit_energy_j * 1e9:10.4f} nJ")
    print(f"  E_miss      {model.miss_energy_j * 1e9:10.4f} nJ")
    print(f"  E_write     {model.write_energy_j * 1e9:10.4f} nJ")
    print(f"  leakage     {model.leakage_w:10.4f} W")
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.endurance.lifetime import estimate_lifetime
    from repro.endurance.wear import replay_with_wear
    from repro.sim.config import gainestown

    trace = _get_trace(args)
    session = SimulationSession(trace)
    model = published_model(args.llc, "fixed-capacity")
    window = session.run(sram_baseline()).runtime_s
    wear = replay_with_wear(
        session.private.stream, model.capacity_bytes,
        gainestown().llc_associativity,
    )
    estimate = estimate_lifetime(model.name, model.cell_class, wear, window)
    print(f"{model.name} on {trace.name}:")
    print(f"  data-array write rate {estimate.total_write_rate:.3e} /s")
    if estimate.unleveled_years is None:
        print("  lifetime: effectively unlimited (no wear-out)")
    else:
        print(f"  unleveled lifetime {estimate.unleveled_years:.3e} years")
        print(f"  ideally leveled    {estimate.leveled_years:.3e} years "
              f"({estimate.leveling_gain:.1f}x)")
    return 0


def _cmd_techniques(args: argparse.Namespace) -> int:
    from repro.techniques import (
        EarlyWriteTermination,
        ReuseWriteBypass,
        SetRotationLeveling,
        evaluate_all,
    )

    trace = _get_trace(args)
    model = published_model(args.llc, "fixed-capacity")
    evaluations = evaluate_all(
        trace,
        model,
        [SetRotationLeveling(), ReuseWriteBypass(), EarlyWriteTermination()],
    )
    print(f"{model.name} on {trace.name}:")
    print(f"{'technique':26s} {'write cut':>10s} {'energy cut':>11s} {'dram+':>7s}")
    for e in evaluations:
        print(
            f"{e.technique:26s} {e.write_reduction:10.1%} "
            f"{e.energy_reduction:11.1%} {e.extra_dram_writes:7d}"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.replay_cache import ReplayCache

    cache = ReplayCache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    if args.sweep_tmp:
        swept = cache.sweep_stale_tmp(max_age_s=0.0)
        print(f"swept {swept} stale temp files from {cache.root}")
        return 0
    stats = cache.stats()
    cap = stats["max_bytes"]
    total_mb = stats["total_bytes"] / (1024 * 1024)
    print(f"replay cache: {stats['root']}")
    print(f"  enabled     {stats['enabled']}")
    print(f"  entries     {stats['entries']}")
    print(f"  size        {total_mb:.1f} MB"
          + (f" (cap {cap / (1024 * 1024):.0f} MB)" if cap else " (no cap)"))
    print(f"  temp files  {stats['tmp_files']}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.validate.doctor import run_doctor

    return run_doctor()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ExperimentServer

    server = ExperimentServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queued=args.queue_max,
        state_dir=args.dir,
        store_dir=args.store_dir,
    )
    server.serve_until_drained()
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    from repro.serve import ShardRouter, resolve_shards

    shards = resolve_shards(
        args.shards.split(",") if args.shards else None
    )
    router = ShardRouter(
        shards, host=args.host or "127.0.0.1", port=args.port or 0
    )
    router.serve_until_drained()
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if getattr(args, "action", "run") == "status":
        return _fleet_status(args)
    import signal as _signal

    from repro.serve import Fleet, resolve_fleet_shards

    fleet = Fleet(
        shards=resolve_fleet_shards(args.shards),
        root=args.dir,
        workers=args.workers if args.workers is not None else 2,
        router_host=args.host or "127.0.0.1",
        router_port=args.port or 0,
        supervise=bool(getattr(args, "supervise", False)),
    )
    drain = threading.Event()
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        _signal.signal(signum, lambda *_: drain.set())
    with fleet:
        print(f"repro-serve-fleet router on {fleet.url} "
              f"({len(fleet.shard_urls)} shards)")
        for index, url in enumerate(fleet.shard_urls):
            print(f"  shard {index}: {url}")
        print(f"  store:   {fleet.store_dir}")
        sys.stdout.flush()
        while not drain.wait(timeout=60.0):
            pass
    print("fleet drained")
    return 0


def _fleet_status(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    payload = ServeClient(args.url).ring()
    ring = payload["ring"]
    print(f"ring v{ring['version']}: {len(ring['nodes'])} shards in ring, "
          f"{ring['replicas']} vnodes/shard")
    members = payload["members"]
    for url in sorted(members, key=lambda u: members[u]["index"]):
        member = members[url]
        place = "in-ring" if member["in_ring"] else "ejected"
        line = (f"  shard {member['index']}: {url}  "
                f"{member['state']}/{place}")
        if member.get("consecutive_failures"):
            line += f"  failures={member['consecutive_failures']}"
        if member.get("last_error"):
            line += f"  last_error: {member['last_error']}"
        print(line)
    store = payload["store"]
    print(f"store: {store['entries']} entries, "
          f"{store['total_bytes'] / (1024 * 1024):.2f} MB")
    heartbeat = payload["heartbeat"]
    print(f"heartbeat: every {heartbeat['period_s']:g}s, "
          f"timeout {heartbeat['timeout_s']:g}s, "
          f"eject after {heartbeat['eject_after']} failures")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro import loadgen

    scenario = loadgen.resolve_scenario(args.scenario)
    if args.shard_counts:
        counts = [int(part) for part in args.shard_counts.split(",")]
        runs = loadgen.sweep_shards(
            scenario, counts, workers=args.workers or 2,
            progress=lambda message: print(f"running {message}",
                                           file=sys.stderr),
        )
        report = loadgen.summarize_fleet(runs, scenario.as_dict())
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            sys.stdout.write(loadgen.render_fleet(report))
        return 0
    shards = args.shards.split(",") if args.shards else None
    summaries = []
    for qps in scenario.qps:
        import time as _time

        start = _time.monotonic()
        records = loadgen.offer(scenario, qps, url=args.url, shards=shards)
        run = loadgen.RateRun(qps, records, _time.monotonic() - start)
        summaries.append(loadgen.summarize_rate(run))
    if args.json:
        print(_json.dumps(
            {"scenario": scenario.as_dict(), "rates": summaries},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"scenario {scenario.name}")
        for summary in summaries:
            print(loadgen.render_rate(summary))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ShardedClient, submit_with_backoff

    if args.shards:
        client = ShardedClient(args.shards.split(","))
    else:
        client = ServeClient(args.url)
    response = submit_with_backoff(
        client, args.experiment, scale=args.scale, seed=args.seed,
        priority=args.priority, attempts=max(1, args.retries + 1),
    )
    job = response["job"]
    dedup = " (deduplicated onto an existing job)" if response["deduped"] else ""
    print(f"job {job['id']}  state={job['state']}  "
          f"digest={job['digest'][:16]}{dedup}")
    if not args.wait:
        return 0
    record = client.wait(job["id"], timeout_s=args.timeout)
    if record["state"] != "done":
        print(f"job {job['id']} {record['state']}: "
              f"{record['error'] or '(no detail)'}", file=sys.stderr)
        return 5
    sys.stdout.write(client.result(job["id"])["render"])
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.submit:
        from repro.serve import ServeClient

        client = ServeClient(args.url)
        response = client.plan(scale=args.scale, seed=args.seed)
        job = response["job"]
        dedup = (
            " (deduplicated onto an existing job)" if response["deduped"]
            else ""
        )
        print(f"plan job {job['id']}  state={job['state']}  "
              f"priority={job['priority']}{dedup}")
        if not args.wait:
            return 0
        record = client.wait(job["id"], timeout_s=args.timeout)
        if record["state"] != "done":
            print(f"job {job['id']} {record['state']}: "
                  f"{record['error'] or '(no detail)'}", file=sys.stderr)
            return 5
        sys.stdout.write(client.result(job["id"])["render"])
        return 0

    from repro.analytic import planner
    from repro.experiments.common import ExperimentContext
    from repro.workloads.generators import DEFAULT_SEED

    seed = DEFAULT_SEED if args.seed is None else args.seed
    context = ExperimentContext(scale=args.scale, seed=seed)
    workloads = args.workloads.split(",") if args.workloads else None
    outcome = planner.run_dse(
        context, margin=args.margin, workloads=workloads
    )
    sys.stdout.write(planner.render(outcome))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.job_id:
        record = client.status(args.job_id)
        for key in ("id", "state", "digest", "submissions", "error"):
            if record[key] is not None:
                print(f"  {key:12s} {record[key]}")
        spec = record["spec"]
        print(f"  {'spec':12s} {spec['experiment']} scale={spec['scale']:g} "
              f"seed={spec['seed']}")
        return 0
    health = client.health()
    print(f"service {client.url}: {health['status']}  "
          f"workers={health['workers']}  queued={health['queued']}  "
          f"running={health['running']}")
    jobs = client.list_jobs()
    if not jobs:
        print("no jobs")
        return 0
    for record in jobs:
        spec = record["spec"]
        print(f"  {record['id']}  {record['state']:9s} "
              f"{spec['experiment']:12s} scale={spec['scale']:g} "
              f"submissions={record['submissions']}")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.json:
        sys.stdout.write(client.result_bytes(args.job_id).decode() + "\n")
        return 0
    payload = client.result(args.job_id)
    print(payload["title"])
    sys.stdout.write(payload["render"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli", description="NVM-LLC reproduction toolkit"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect run telemetry (repro.obs) and print a summary to "
        "stderr after the command",
    )
    parser.add_argument(
        "--validate",
        choices=("strict", "lenient", "off"),
        default=None,
        help="input/output validation policy "
        "(also: REPRO_VALIDATE; default: strict)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite")

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--workload", help="suite benchmark name")
        group.add_argument("--trace-file", help=".npz or text trace file")
        p.add_argument("--accesses", type=int, default=None,
                       help="override trace length (suite workloads)")

    p = sub.add_parser("characterize", help="PRISM features for a workload")
    add_trace_args(p)

    p = sub.add_parser("simulate", help="simulate a workload on an LLC")
    add_trace_args(p)
    p.add_argument("--llc", default="Xue_S", help="Table III model name")
    p.add_argument("--configuration", default="fixed-capacity",
                   choices=("fixed-capacity", "fixed-area"))

    p = sub.add_parser("model", help="generate an LLC model from a cell")
    p.add_argument("--cell", required=True, help="Table II cell name")
    p.add_argument("--capacity-mb", type=float, default=2.0)

    p = sub.add_parser("lifetime", help="project LLC lifetime")
    add_trace_args(p)
    p.add_argument("--llc", default="Kang_P")

    p = sub.add_parser("techniques", help="evaluate management techniques")
    add_trace_args(p)
    p.add_argument("--llc", default="Kang_P")

    p = sub.add_parser("cache", help="inspect/clear the on-disk replay cache")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    group.add_argument("--sweep-tmp", action="store_true",
                       help="remove orphaned *.tmp files regardless of age")

    sub.add_parser(
        "doctor",
        help="self-check the installation (exit 0 = healthy; "
        "10/11/12/13 = environment/cells/models/sweep failure)",
    )

    p = sub.add_parser(
        "serve",
        help="run the experiment service daemon (SIGTERM drains gracefully)",
    )
    p.add_argument("--host", default=None,
                   help="bind address (also: REPRO_SERVE_HOST; "
                   "default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port, 0 = ephemeral (also: REPRO_SERVE_PORT; "
                   "default 8765)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads (also: REPRO_SERVE_WORKERS; "
                   "default 2)")
    p.add_argument("--queue-max", type=int, default=None,
                   help="queued-job bound before 429 backpressure "
                   "(also: REPRO_SERVE_QUEUE_MAX; default 64)")
    p.add_argument("--dir", default=None,
                   help="state directory for the drain journal and per-job "
                   "checkpoints (also: REPRO_SERVE_DIR)")
    p.add_argument("--store-dir", default=None,
                   help="shared result-store directory for cross-instance "
                   "dedup (also: REPRO_SERVE_STORE_DIR)")

    p = sub.add_parser(
        "router",
        help="run the fleet front end: route jobs across shards by spec "
        "digest over a consistent-hash ring",
    )
    p.add_argument("--shards", default=None,
                   help="comma-separated shard base URLs "
                   "(also: REPRO_SERVE_SHARDS)")
    p.add_argument("--host", default=None,
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port, 0 = ephemeral (default 0)")

    p = sub.add_parser(
        "fleet",
        help="launch N serve shards + a shared result store + a router "
        "(SIGTERM drains the whole fleet), or inspect a running one",
    )
    p.add_argument("action", nargs="?", choices=("run", "status"),
                   default="run",
                   help="'run' (default) launches a fleet; 'status' "
                   "renders a running router's GET /ring — membership, "
                   "ring version, per-shard health, store occupancy")
    p.add_argument("--url", default=None,
                   help="with 'status': router base URL "
                   "(also: REPRO_SERVE_URL)")
    p.add_argument("--supervise", action="store_true",
                   help="restart crashed shards in place with exponential "
                   "backoff (self-healing fleet)")
    p.add_argument("--shards", type=int, default=None,
                   help="shard count (also: REPRO_SERVE_FLEET_SHARDS; "
                   "default 2)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads per shard (default 2)")
    p.add_argument("--dir", default=None,
                   help="fleet root directory holding the store and each "
                   "shard's state (default: a temp dir)")
    p.add_argument("--host", default=None,
                   help="router bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="router bind port, 0 = ephemeral (default 0)")

    p = sub.add_parser(
        "loadgen",
        help="offer a declarative load scenario (bundled profile name or "
        "profile file) to a service, router, or fresh fleets",
    )
    p.add_argument("scenario",
                   help="bundled profile name (smoke, scaling, "
                   "duplicate_storm, compute) or a JSON/YAML profile path")
    p.add_argument("--url", default=None,
                   help="target base URL — a daemon or a router "
                   "(also: REPRO_SERVE_URL)")
    p.add_argument("--shards", default=None,
                   help="comma-separated shard URLs for client-side "
                   "routing instead of --url")
    p.add_argument("--shard-counts", default=None,
                   help="comma-separated shard counts (e.g. 1,2,4): boot a "
                   "fresh fleet per count and sweep the scenario's rates")
    p.add_argument("--workers", type=int, default=None,
                   help="with --shard-counts: worker threads per shard "
                   "(default 2)")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of text")

    def add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=None,
                       help="service base URL (also: REPRO_SERVE_URL; "
                       "default http://127.0.0.1:8765)")

    p = sub.add_parser("submit", help="submit a job to a running service")
    p.add_argument("--shards", default=None,
                   help="comma-separated shard URLs: route client-side over "
                   "the consistent-hash ring instead of --url "
                   "(also: REPRO_SERVE_SHARDS)")
    p.add_argument("--experiment", required=True,
                   help="experiment id (e.g. table2, figure1, coresweep)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="trace-length scale factor in (0, 1]")
    p.add_argument("--seed", type=int, default=None,
                   help="workload generator seed")
    p.add_argument("--priority", type=int, default=0,
                   help="dispatch priority (higher runs first)")
    p.add_argument("--wait", action="store_true",
                   help="poll until done and print the rendered result")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait with --wait (default 600)")
    p.add_argument("--retries", type=int, default=3,
                   help="resubmissions on retryable fleet conditions — "
                   "429 BUSY backpressure or 503 DEGRADED (a dead shard "
                   "not yet healed) — honouring Retry-After (default 3)")
    add_url(p)

    p = sub.add_parser(
        "plan",
        help="run the analytical DSE planner (surrogate-pruned sweep; "
        "see docs/DSE.md) locally, or --submit it to a service",
    )
    p.add_argument("--scale", type=float, default=1.0,
                   help="trace-length scale factor in (0, 1]")
    p.add_argument("--seed", type=int, default=None,
                   help="workload generator seed")
    p.add_argument("--margin", type=float, default=None,
                   help="Pareto-pruning accuracy margin in [0, 1) "
                   "(also: REPRO_DSE_MARGIN; default 0.005; local only)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names "
                   "(also: REPRO_DSE_WORKLOADS; default: the AI suite; "
                   "local only)")
    p.add_argument("--submit", action="store_true",
                   help="submit to a running service at the plan priority "
                   "tier instead of planning locally")
    p.add_argument("--wait", action="store_true",
                   help="with --submit: poll until done and print the "
                   "rendered result")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait with --wait (default 600)")
    add_url(p)

    p = sub.add_parser(
        "status", help="poll the service (one job, or every job + health)"
    )
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id (omit to list all jobs)")
    add_url(p)

    p = sub.add_parser("fetch", help="fetch a finished job's result payload")
    p.add_argument("job_id", help="job id")
    p.add_argument("--json", action="store_true",
                   help="print the raw canonical JSON payload")
    add_url(p)

    return parser


_HANDLERS = {
    "workloads": _cmd_workloads,
    "characterize": _cmd_characterize,
    "simulate": _cmd_simulate,
    "model": _cmd_model,
    "lifetime": _cmd_lifetime,
    "techniques": _cmd_techniques,
    "cache": _cmd_cache,
    "doctor": _cmd_doctor,
    "serve": _cmd_serve,
    "router": _cmd_router,
    "fleet": _cmd_fleet,
    "loadgen": _cmd_loadgen,
    "submit": _cmd_submit,
    "plan": _cmd_plan,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.validate is not None:
        import os

        from repro.validate.policy import POLICY_ENV, resolve_policy, set_policy

        policy = resolve_policy(args.validate)
        set_policy(policy)
        # Export so worker processes spawned by this run see the same
        # policy the parent enforces.
        os.environ[POLICY_ENV] = policy.value
    registry = obs.enable() if args.metrics else None
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(render_error(error), file=sys.stderr)
        return error.exit_code
    finally:
        if registry is not None:
            sys.stderr.write(obs.render_summary(registry.snapshot()))
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
