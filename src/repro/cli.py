"""``repro-cli`` — task-oriented command line for the library.

Subcommands (each prints a small report to stdout):

- ``characterize`` — PRISM features for a suite workload or a trace file
- ``simulate``     — run a workload on an LLC model vs the SRAM baseline
- ``model``        — generate an LLC model from a library cell
- ``lifetime``     — project LLC lifetime for a workload on an NVM
- ``techniques``   — evaluate the management techniques on a workload
- ``workloads``    — list the benchmark suite
- ``cache``        — inspect/clear the on-disk replay cache
- ``doctor``       — self-check the installation (environment, cell
  library, model generation, a golden-trace sweep)

The global ``--metrics`` flag (before the subcommand) collects
:mod:`repro.obs` telemetry for the invocation — replay events, cache
hits, engine usage — and prints the summary to stderr afterwards.
The global ``--validate`` flag (or ``REPRO_VALIDATE``) selects the
input/output validation policy: ``strict`` (default), ``lenient`` or
``off`` — see :mod:`repro.validate`.

``repro-experiments`` (see :mod:`repro.experiments.runner`) remains the
paper-regeneration entry point; this CLI serves ad-hoc use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.cells.library import cell_by_name
from repro.errors import ReproError, render_error
from repro.nvsim.config import CacheDesign
from repro.nvsim.model import generate_llc_model
from repro.nvsim.published import published_model, sram_baseline
from repro.prism.profile import FEATURE_NAMES, extract_features
from repro.sim.results import normalize
from repro.sim.system import SimulationSession
from repro.trace.io import load_npz, parse_text
from repro.workloads.generators import generate_trace
from repro.workloads.profiles import PROFILES
from repro.workloads.registry import all_benchmarks


def _get_trace(args: argparse.Namespace):
    """Resolve --workload / --trace-file into a Trace."""
    if getattr(args, "trace_file", None):
        path = args.trace_file
        if path.endswith(".npz"):
            return load_npz(path)
        return parse_text(path, name=path)
    n = getattr(args, "accesses", None)
    return generate_trace(args.workload, n_accesses=n)


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'suite':10s} {'threads':>7s} {'paper mpki':>10s}  description")
    for name in all_benchmarks():
        bench = PROFILES[name]
        print(
            f"{name:12s} {bench.suite:10s} {bench.n_threads:7d} "
            f"{bench.paper_mpki:10.1f}  {bench.description}"
        )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    trace = _get_trace(args)
    features = extract_features(trace)
    print(f"workload: {trace.name or '(trace file)'}  accesses: {len(trace):,}")
    for feature in FEATURE_NAMES:
        print(f"  {feature:24s} {getattr(features, feature):14.3f}")
    print(f"  {'write_intensity':24s} {features.write_intensity:14.3f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _get_trace(args)
    session = SimulationSession(trace)
    model = published_model(args.llc, args.configuration)
    baseline = session.run(sram_baseline(args.configuration), args.configuration)
    result = session.run(model, args.configuration)
    norm = normalize(result, baseline)
    print(f"workload {trace.name}: {model.name} vs SRAM ({args.configuration})")
    print(f"  runtime    {result.runtime_s * 1e6:10.1f} us  (SRAM {baseline.runtime_s * 1e6:.1f} us)")
    print(f"  LLC energy {result.llc_energy_j * 1e6:10.1f} uJ  (SRAM {baseline.llc_energy_j * 1e6:.1f} uJ)")
    print(f"  mpki       {result.mpki:10.2f}")
    print(f"  speedup      {norm.speedup:8.3f}")
    print(f"  energy ratio {norm.energy_ratio:8.3f}")
    print(f"  ED^2P ratio  {norm.ed2p_ratio:8.3f}")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    cell = cell_by_name(args.cell)
    design = CacheDesign(capacity_bytes=int(args.capacity_mb * units.MB))
    model = generate_llc_model(cell, design)
    print(f"{model.name} @ {model.capacity_mb:g} MB ({model.cell_class.value})")
    print(f"  area        {model.area_mm2:10.3f} mm^2")
    print(f"  tag         {model.tag_latency_s * 1e9:10.3f} ns")
    print(f"  read        {model.read_latency_s * 1e9:10.3f} ns")
    print(f"  write       {model.write_latency_s * 1e9:10.3f} ns (set "
          f"{model.set_latency_s * 1e9:.3f} / reset {model.reset_latency_s * 1e9:.3f})")
    print(f"  E_hit       {model.hit_energy_j * 1e9:10.4f} nJ")
    print(f"  E_miss      {model.miss_energy_j * 1e9:10.4f} nJ")
    print(f"  E_write     {model.write_energy_j * 1e9:10.4f} nJ")
    print(f"  leakage     {model.leakage_w:10.4f} W")
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.endurance.lifetime import estimate_lifetime
    from repro.endurance.wear import replay_with_wear
    from repro.sim.config import gainestown

    trace = _get_trace(args)
    session = SimulationSession(trace)
    model = published_model(args.llc, "fixed-capacity")
    window = session.run(sram_baseline()).runtime_s
    wear = replay_with_wear(
        session.private.stream, model.capacity_bytes,
        gainestown().llc_associativity,
    )
    estimate = estimate_lifetime(model.name, model.cell_class, wear, window)
    print(f"{model.name} on {trace.name}:")
    print(f"  data-array write rate {estimate.total_write_rate:.3e} /s")
    if estimate.unleveled_years is None:
        print("  lifetime: effectively unlimited (no wear-out)")
    else:
        print(f"  unleveled lifetime {estimate.unleveled_years:.3e} years")
        print(f"  ideally leveled    {estimate.leveled_years:.3e} years "
              f"({estimate.leveling_gain:.1f}x)")
    return 0


def _cmd_techniques(args: argparse.Namespace) -> int:
    from repro.techniques import (
        EarlyWriteTermination,
        ReuseWriteBypass,
        SetRotationLeveling,
        evaluate_all,
    )

    trace = _get_trace(args)
    model = published_model(args.llc, "fixed-capacity")
    evaluations = evaluate_all(
        trace,
        model,
        [SetRotationLeveling(), ReuseWriteBypass(), EarlyWriteTermination()],
    )
    print(f"{model.name} on {trace.name}:")
    print(f"{'technique':26s} {'write cut':>10s} {'energy cut':>11s} {'dram+':>7s}")
    for e in evaluations:
        print(
            f"{e.technique:26s} {e.write_reduction:10.1%} "
            f"{e.energy_reduction:11.1%} {e.extra_dram_writes:7d}"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.replay_cache import ReplayCache, cache_max_bytes

    cache = ReplayCache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    if args.sweep_tmp:
        swept = cache.sweep_stale_tmp(max_age_s=0.0)
        print(f"swept {swept} stale temp files from {cache.root}")
        return 0
    cap = cache_max_bytes()
    total_mb = cache.total_bytes() / (1024 * 1024)
    tmp_files = sum(1 for _ in cache.root.glob("*.tmp")) if cache.root.is_dir() else 0
    print(f"replay cache: {cache.root}")
    print(f"  enabled     {cache.enabled}")
    print(f"  entries     {cache.entries()}")
    print(f"  size        {total_mb:.1f} MB"
          + (f" (cap {cap / (1024 * 1024):.0f} MB)" if cap else " (no cap)"))
    print(f"  temp files  {tmp_files}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.validate.doctor import run_doctor

    return run_doctor()


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli", description="NVM-LLC reproduction toolkit"
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect run telemetry (repro.obs) and print a summary to "
        "stderr after the command",
    )
    parser.add_argument(
        "--validate",
        choices=("strict", "lenient", "off"),
        default=None,
        help="input/output validation policy "
        "(also: REPRO_VALIDATE; default: strict)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite")

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--workload", help="suite benchmark name")
        group.add_argument("--trace-file", help=".npz or text trace file")
        p.add_argument("--accesses", type=int, default=None,
                       help="override trace length (suite workloads)")

    p = sub.add_parser("characterize", help="PRISM features for a workload")
    add_trace_args(p)

    p = sub.add_parser("simulate", help="simulate a workload on an LLC")
    add_trace_args(p)
    p.add_argument("--llc", default="Xue_S", help="Table III model name")
    p.add_argument("--configuration", default="fixed-capacity",
                   choices=("fixed-capacity", "fixed-area"))

    p = sub.add_parser("model", help="generate an LLC model from a cell")
    p.add_argument("--cell", required=True, help="Table II cell name")
    p.add_argument("--capacity-mb", type=float, default=2.0)

    p = sub.add_parser("lifetime", help="project LLC lifetime")
    add_trace_args(p)
    p.add_argument("--llc", default="Kang_P")

    p = sub.add_parser("techniques", help="evaluate management techniques")
    add_trace_args(p)
    p.add_argument("--llc", default="Kang_P")

    p = sub.add_parser("cache", help="inspect/clear the on-disk replay cache")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    group.add_argument("--sweep-tmp", action="store_true",
                       help="remove orphaned *.tmp files regardless of age")

    sub.add_parser(
        "doctor",
        help="self-check the installation (exit 0 = healthy; "
        "10/11/12/13 = environment/cells/models/sweep failure)",
    )

    return parser


_HANDLERS = {
    "workloads": _cmd_workloads,
    "characterize": _cmd_characterize,
    "simulate": _cmd_simulate,
    "model": _cmd_model,
    "lifetime": _cmd_lifetime,
    "techniques": _cmd_techniques,
    "cache": _cmd_cache,
    "doctor": _cmd_doctor,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.validate is not None:
        import os

        from repro.validate.policy import POLICY_ENV, resolve_policy, set_policy

        policy = resolve_policy(args.validate)
        set_policy(policy)
        # Export so worker processes spawned by this run see the same
        # policy the parent enforces.
        os.environ[POLICY_ENV] = policy.value
    registry = obs.enable() if args.metrics else None
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(render_error(error), file=sys.stderr)
        return error.exit_code
    finally:
        if registry is not None:
            sys.stderr.write(obs.render_summary(registry.snapshot()))
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
