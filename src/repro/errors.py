"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.

Structured error contract
-------------------------

Every subclass carries two stable class attributes the command-line
entry points rely on:

- ``code`` — a short, stable identifier rendered as
  ``error[<code>]: <message>`` (see :func:`render_error`).  Codes are
  part of the public interface: scripts may grep for them, so they
  never change once released.
- ``exit_code`` — the process exit status the CLIs map the error to.
  The full table lives in ``docs/CONFIGURATION.md`` ("Exit codes");
  in short: ``1`` generic failure, ``2`` usage (argparse), ``3``
  partial sweep results, ``4`` input validation / plausibility,
  ``10``-``13`` ``repro-cli doctor`` failure classes.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable identifier rendered as ``error[<code>]`` by the CLIs.
    code = "REPRO"

    #: Process exit status the CLI entry points map this error to.
    exit_code = 1


class CellParameterError(ReproError):
    """A cell specification is missing or has an invalid parameter."""

    code = "CELL"


class HeuristicError(ReproError):
    """A modeling heuristic could not be applied (e.g. no donor cell)."""

    code = "HEURISTIC"


class ModelGenerationError(ReproError):
    """The circuit model could not produce an LLC model for a cell."""

    code = "MODEL"


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent.

    Structured context (all optional) lets callers — and the
    ``error[TRACE]`` rendering — say exactly what was wrong where:
    ``lineno`` (1-based text-format line), ``field`` (``address`` /
    ``thread`` / ``gap`` / an npz array name) and ``value`` (the
    offending raw token).
    """

    code = "TRACE"
    exit_code = 4

    def __init__(
        self,
        message: str,
        lineno: Optional[int] = None,
        field: Optional[str] = None,
        value: object = None,
    ) -> None:
        super().__init__(message)
        self.lineno = lineno
        self.field = field
        self.value = value


class WorkloadError(ReproError):
    """An unknown workload was requested or a generator misbehaved."""

    code = "WORKLOAD"


class SimulationError(ReproError):
    """The system simulator reached an inconsistent state."""

    code = "SIM"


class ConfigurationError(ReproError):
    """An architecture or cache configuration is invalid."""

    code = "CONFIG"


class CorrelationError(ReproError):
    """The correlation framework received unusable inputs."""

    code = "CORRELATE"


class ExperimentError(ReproError):
    """An experiment could not be assembled or executed."""

    code = "EXPERIMENT"


class CheckpointError(ReproError):
    """A checkpoint journal could not be written or read."""

    code = "CHECKPOINT"


class CompressionError(ReproError):
    """The compressed-LLC model was misconfigured.

    Raised by :mod:`repro.techniques.compression` for an invalid
    compacted-way tag factor (``REPRO_COMPRESS_TAG_FACTOR``), a
    compressed-size function that returns sizes outside
    ``(0, block_bytes]``, or an unusable compressibility distribution.
    """

    code = "COMPRESS"
    exit_code = 2


class PlanError(ReproError):
    """The DSE planner was misconfigured or its grid is unusable.

    Raised by :mod:`repro.analytic.planner` for an out-of-range
    accuracy margin (``--dse-margin`` / ``REPRO_DSE_MARGIN``), an
    unknown workload in ``REPRO_DSE_WORKLOADS``, or an empty grid.
    """

    code = "PLAN"


class PlausibilityError(ReproError):
    """A value passed structural checks but is physically impossible.

    Raised by the validation firewall (:mod:`repro.validate`) when a
    cell parameter, model output or simulation result falls outside its
    plausibility bounds — NaN latency, negative energy, a femtosecond
    pulse width.  Carries the offending ``field``, its ``value``, the
    violated ``bound`` (human-readable) and the ``provenance`` chain
    (which heuristic produced the number), so the error message names
    the culprit, not just the symptom.
    """

    code = "PLAUSIBILITY"
    exit_code = 4

    def __init__(
        self,
        message: str,
        subject: str = "",
        field: str = "",
        value: object = None,
        bound: str = "",
        provenance: str = "",
    ) -> None:
        super().__init__(message)
        self.subject = subject
        self.field = field
        self.value = value
        self.bound = bound
        self.provenance = provenance


class ServeError(ReproError):
    """The experiment service (:mod:`repro.serve`) rejected a request.

    Carries ``http_status`` — the HTTP response status the daemon maps
    the error to — alongside the usual ``code``/``exit_code`` contract,
    so the same exception type serves both the HTTP boundary and the
    ``repro-cli submit``/``fetch`` client (which exits 5 on any
    service-side failure).
    """

    code = "SERVE"
    exit_code = 5

    #: Default HTTP status the daemon renders this error with.
    http_status = 400

    def __init__(self, message: str, http_status: Optional[int] = None) -> None:
        super().__init__(message)
        if http_status is not None:
            self.http_status = http_status


class QueueFullError(ServeError):
    """The service job queue is at capacity (backpressure).

    Rendered as HTTP 429 with a ``Retry-After`` header carrying
    ``retry_after_s``; callers should back off and resubmit.
    """

    code = "BUSY"
    http_status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DegradedError(ServeError):
    """A fleet segment is temporarily uncovered (dead or ejected shard).

    The router raises this instead of a bare 502 when the shard owning
    a digest is unreachable and the result cannot be served from the
    shared store.  Rendered as HTTP 503 with a ``Retry-After`` header
    carrying ``retry_after_s`` — the condition is *retryable*: the
    heartbeat monitor ejects the dead shard and remaps its ring
    segment, or the fleet supervisor restarts it, so a backed-off
    resubmission lands on a live owner (and submissions are idempotent
    by spec digest, so the retry can never double-compute).
    """

    code = "DEGRADED"
    http_status = 503

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class LoadGenError(ReproError):
    """A load-generation scenario (:mod:`repro.loadgen`) is invalid.

    Raised for malformed scenario profiles, unknown arrival processes
    and out-of-range mix/rate parameters — configuration problems, so
    the CLI exits 2 like other bad-input errors.
    """

    code = "LOADGEN"
    exit_code = 2


class PartialResultError(ExperimentError):
    """A sweep finished with some cells failed — but none lost.

    Carries every completed result so callers (and the checkpoint
    journal) keep the work already done; ``failures`` maps the input
    index of each failed cell to the error message that killed it.

    Attributes
    ----------
    completed:
        ``{input_index: {model_name: SimResult}}`` for every cell that
        finished.
    failures:
        ``{input_index: message}`` for every cell that did not.
    """

    code = "PARTIAL"
    exit_code = 3

    def __init__(self, message, completed=None, failures=None):
        super().__init__(message)
        self.completed = dict(completed or {})
        self.failures = dict(failures or {})


def render_error(error: ReproError) -> str:
    """The CLI rendering of a library error: ``error[<code>]: <message>``.

    Every ``repro-cli`` / ``repro-experiments`` entry point prints this
    (to stderr, no traceback) and exits with ``error.exit_code``.
    """
    return f"error[{error.code}]: {error}"
