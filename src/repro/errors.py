"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CellParameterError(ReproError):
    """A cell specification is missing or has an invalid parameter."""


class HeuristicError(ReproError):
    """A modeling heuristic could not be applied (e.g. no donor cell)."""


class ModelGenerationError(ReproError):
    """The circuit model could not produce an LLC model for a cell."""


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent."""


class WorkloadError(ReproError):
    """An unknown workload was requested or a generator misbehaved."""


class SimulationError(ReproError):
    """The system simulator reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An architecture or cache configuration is invalid."""


class CorrelationError(ReproError):
    """The correlation framework received unusable inputs."""


class ExperimentError(ReproError):
    """An experiment could not be assembled or executed."""
