"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CellParameterError(ReproError):
    """A cell specification is missing or has an invalid parameter."""


class HeuristicError(ReproError):
    """A modeling heuristic could not be applied (e.g. no donor cell)."""


class ModelGenerationError(ReproError):
    """The circuit model could not produce an LLC model for a cell."""


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent."""


class WorkloadError(ReproError):
    """An unknown workload was requested or a generator misbehaved."""


class SimulationError(ReproError):
    """The system simulator reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An architecture or cache configuration is invalid."""


class CorrelationError(ReproError):
    """The correlation framework received unusable inputs."""


class ExperimentError(ReproError):
    """An experiment could not be assembled or executed."""


class CheckpointError(ReproError):
    """A checkpoint journal could not be written or read."""


class PartialResultError(ExperimentError):
    """A sweep finished with some cells failed — but none lost.

    Carries every completed result so callers (and the checkpoint
    journal) keep the work already done; ``failures`` maps the input
    index of each failed cell to the error message that killed it.

    Attributes
    ----------
    completed:
        ``{input_index: {model_name: SimResult}}`` for every cell that
        finished.
    failures:
        ``{input_index: message}`` for every cell that did not.
    """

    def __init__(self, message, completed=None, failures=None):
        super().__init__(message)
        self.completed = dict(completed or {})
        self.failures = dict(failures or {})
