#!/usr/bin/env python3
"""Multi-programmed co-location on a shared NVM LLC.

Runs a mix of single-threaded benchmarks — one per core, private address
spaces, one shared LLC — and compares technologies on the standard
multi-program metric (weighted speedup vs isolated runs).  This is the
scenario where fixed-area density pays most directly: every co-runner's
working set competes for the same cache.

Run:  python examples/colocation.py [--quick]
"""

import sys

from repro import nvsim, sim

MIX = ("bzip2", "gobmk", "deepsjeng", "tonto")


def main() -> None:
    quick = "--quick" in sys.argv
    n_each = 60_000 if quick else None  # None = full-length traces
    if quick:
        print("(quick mode: shortened traces, capacity effects muted)\n")

    print(f"mix: {' + '.join(MIX)} on 4 cores, shared LLC\n")
    print(f"{'LLC':12s} {'config':15s} {'weighted speedup':>17s} "
          f"{'LLC energy [uJ]':>16s}")
    rows = [
        ("SRAM", "fixed-area"),
        ("Jan_S", "fixed-area"),
        ("Xue_S", "fixed-area"),
        ("Hayakawa_R", "fixed-area"),
        ("Zhang_R", "fixed-area"),
    ]
    results = {}
    for name, configuration in rows:
        model = nvsim.published_model(name, configuration)
        result = sim.simulate_mix(
            MIX, model, n_accesses_each=n_each, configuration=configuration
        )
        results[name] = result
        print(f"{name:12s} {configuration:15s} {result.weighted_speedup:17.3f} "
              f"{result.llc_energy_j * 1e6:16.1f}")

    print("\nper-benchmark slowdown under co-location (Xue_S):")
    for name, speedup in results["Xue_S"].per_benchmark_speedup.items():
        print(f"  {name:12s} {speedup:.3f}x of isolated")

    best = max(results, key=lambda k: results[k].weighted_speedup)
    frugal = min(results, key=lambda k: results[k].llc_energy_j)
    print(f"\nbest throughput: {best}; best LLC energy: {frugal}")
    print("dense fixed-area NVMs absorb the combined working set; the")
    print("1 MB Jan_S pays in misses what it saves in leakage.")


if __name__ == "__main__":
    main()
