#!/usr/bin/env python3
"""AI LLC selection: the paper's Section VI scenario.

Emulates "selecting an LLC technology for a theoretical, modern
domain-specific architecture for statistical inference": profile the
cpu2017 AI workloads, simulate the candidate NVMs in both configurations
and run the correlation framework to learn which architecture-agnostic
features predict energy and speedup.

Run:  python examples/ai_llc_selection.py
"""

from repro import prism, sim, nvsim, workloads
from repro.correlate import FIGURE4_LLCS, run_framework
from repro.prism.profile import FEATURE_NAMES

AI = ("deepsjeng", "leela", "exchange2")


def main() -> None:
    # 1. Characterize the AI workloads (PRISM-equivalent).
    print("profiling AI workloads...")
    traces = {name: workloads.generate_trace(name) for name in AI}
    profiles = {name: prism.extract_features(t) for name, t in traces.items()}
    print(f"{'workload':12s} {'H_wg':>6s} {'w_uniq':>8s} {'90%ft_w':>8s} {'w_total':>9s}")
    for name, features in profiles.items():
        print(f"{name:12s} {features.write_global_entropy:6.2f} "
              f"{features.unique_writes:8.0f} {features.footprint90_writes:8.0f} "
              f"{features.total_writes:9.0f}")

    # 2. Simulate the candidate LLCs in both configurations.
    results = {}
    for configuration in ("fixed-capacity", "fixed-area"):
        per_llc = {name: {} for name in FIGURE4_LLCS}
        for workload, trace in traces.items():
            session = sim.SimulationSession(trace)
            baseline = session.run(nvsim.sram_baseline(configuration))
            for llc_name in FIGURE4_LLCS:
                model = nvsim.published_model(llc_name, configuration)
                per_llc[llc_name][workload] = sim.normalize(
                    session.run(model, configuration), baseline
                )
        results[configuration] = per_llc

    # 3. Learn the feature-response relationship (Figure 3 pipeline).
    print("\ncorrelation of features with LLC energy (Jan_S):")
    print(f"{'feature':24s} {'fixed-cap':>10s} {'fixed-area':>11s}")
    reports = {}
    for configuration in ("fixed-capacity", "fixed-area"):
        reports[configuration] = run_framework(
            profiles, results[configuration], AI, configuration, scope="ai"
        )
    jan = {c: next(r for r in reports[c] if r.llc_name == "Jan_S")
           for c in reports}
    for feature in FEATURE_NAMES:
        fc = jan["fixed-capacity"].correlation(feature, "energy")
        fa = jan["fixed-area"].correlation(feature, "energy")
        print(f"{feature:24s} {fc:10.3f} {fa:11.3f}")

    # 4. The designer's takeaway (paper Section VI, last paragraph).
    ranked = jan["fixed-capacity"].ranked_features("energy")
    best_feature, strength = ranked[0]
    print(f"\nstrongest energy predictor: {best_feature} (|r| = {abs(strength):.2f})")
    print("totals-based selection (the prior-art rule) would rank:")
    for totals in ("total_reads", "total_writes"):
        r = jan["fixed-capacity"].correlation(totals, "energy")
        print(f"  {totals:14s} |r| = {abs(r):.2f}  <- negligible, as the paper finds")
    print("\n=> for working-set-dominated AI use cases, pick the NVM whose")
    print("   *density* accommodates the write working set, not the one")
    print("   minimising per-write cost alone (paper Section VI).")


if __name__ == "__main__":
    main()
