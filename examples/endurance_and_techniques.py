#!/usr/bin/env python3
"""Endurance, lifetime, and the techniques that buy it back.

Walks the extension studies end to end for one write-heavy AI workload:

1. wear distribution of the LLC data array (per-set write counts),
2. projected lifetime per technology (Table I endurance limits),
3. the three technique groups from the paper's Section I taxonomy,
4. the hybrid SRAM/NVM way partition,
5. the reuse-distance view of why capacity does or does not help.

Run:  python examples/endurance_and_techniques.py
"""

from repro import endurance, nvsim, prism, sim, techniques, workloads


def main() -> None:
    trace = workloads.generate_trace("deepsjeng")
    arch = sim.gainestown()
    private = sim.filter_private(trace, arch)
    runtime = sim.simulate_system(
        trace, nvsim.sram_baseline(), arch=arch, private=private
    ).runtime_s

    # 1-2. Wear and lifetime per technology.
    print("projected unleveled LLC lifetime on deepsjeng (2 MB, fixed-capacity):")
    for name in ("Kang_P", "Zhang_R", "Xue_S", "SRAM"):
        model = nvsim.published_model(name)
        wear = endurance.replay_with_wear(
            private.stream, model.capacity_bytes, arch.llc_associativity
        )
        estimate = endurance.estimate_lifetime(
            model.name, model.cell_class, wear, runtime
        )
        if estimate.unleveled_years is None:
            print(f"  {name:10s} no wear-out")
        else:
            hours = estimate.unleveled_years * 365.25 * 24
            print(f"  {name:10s} {estimate.unleveled_years:.2e} years "
                  f"(~{hours:.1f} h); ideal leveling x{estimate.leveling_gain:.1f}")

    # 3. The three technique groups on the worst wearer.
    kang = nvsim.published_model("Kang_P")
    print("\ntechniques on Kang_P:")
    for evaluation in techniques.evaluate_all(
        trace,
        kang,
        [
            techniques.SetRotationLeveling(period=4096),
            techniques.ReuseWriteBypass(filter_blocks=8192),
            techniques.EarlyWriteTermination(),
        ],
        window_s=runtime,
    ):
        gain = evaluation.lifetime_gain
        gain_text = f"lifetime x{gain:.2f}" if gain is not None else "no wear-out"
        print(f"  {evaluation.technique:26s} writes {evaluation.write_reduction:+.1%}  "
              f"energy {evaluation.energy_reduction:+.1%}  {gain_text}")

    # 4. Hybrid partition: divert the write stream into SRAM ways.
    hybrid = techniques.evaluate_hybrid(private.stream, kang, sram_ways=2)
    print(f"\nhybrid 2-SRAM/14-NVM ways on Kang_P:")
    print(f"  NVM write reduction   {hybrid.nvm_write_reduction:.1%}")
    print(f"  write-energy reduction {hybrid.write_energy_reduction:.1%}")
    print(f"  leakage increase      x{hybrid.leakage_increase:.1f}")
    print(f"  migrations            {hybrid.counts.migrations}")

    # 5. Why capacity helps this workload: the reuse-distance view.
    profile = prism.reuse_profile(trace)
    knee = prism.capacity_knee_blocks(profile, drop=0.9)
    print(f"\nreuse analysis ({profile.n_accesses:,} accesses):")
    print(f"  cold accesses {profile.cold_accesses:,} of {profile.n_accesses:,}")
    for mb in (1, 2, 4, 8):
        blocks = mb * 1024 * 1024 // 64
        print(f"  ideal LRU miss ratio @ {mb} MB: {profile.miss_ratio(blocks):.3f}")
    if knee is not None:
        knee_mb = knee * 64 / (1024 * 1024)
        print(f"  90%-of-reducible-misses knee: ~{knee_mb:.2f} MB — the sweep"
              " component stops missing once the LLC clears ~3 MB, which is"
              " why the >=4 MB fixed-area NVMs win this workload")


if __name__ == "__main__":
    main()
