#!/usr/bin/env python3
"""Capacity vs latency vs leakage: the Section V-C trade-off, hands-on.

Sweeps one capacity-starved workload (mg) across core counts and the
fixed-area LLC technologies, printing the three-way tension the paper
analyses: dense-but-slow (Zhang_R), dense-and-leaky (Hayakawa_R),
small-but-frugal (Jan_S), and balanced (Xue_S).

Run:  python examples/capacity_vs_latency.py [--quick]
"""

import sys

from repro.experiments import coresweep


def main() -> None:
    quick = "--quick" in sys.argv
    cores = (1, 4, 8) if quick else (1, 2, 4, 8, 16)
    scale = 0.4 if quick else 1.0
    llcs = ("Jan_S", "Xue_S", "Hayakawa_R", "Zhang_R", "Umeki_S", "SRAM")

    print(f"core sweep on mg (weak scaling, fixed-area LLCs, scale={scale})")
    result = coresweep.run(
        workloads=("mg",), cores=cores, llcs=llcs, scale=scale
    )

    print(f"\nspeedup vs 1-core SRAM:")
    print(f"{'LLC':12s}" + "".join(f"{c:>8d}" for c in cores))
    for llc in llcs:
        row = [result.speedup("mg", c, llc) for c in cores]
        print(f"{llc:12s}" + "".join(f"{v:8.2f}" for v in row))

    print(f"\nLLC energy vs 1-core SRAM:")
    print(f"{'LLC':12s}" + "".join(f"{c:>8d}" for c in cores))
    for llc in llcs:
        row = [result.energy_ratio("mg", c, llc) for c in cores]
        print(f"{llc:12s}" + "".join(f"{v:8.2f}" for v in row))

    top = max(cores)
    winner = max(llcs, key=lambda l: result.speedup("mg", top, l))
    frugal = min(llcs, key=lambda l: result.energy_ratio("mg", top, l))
    print(f"\nat {top} cores: best performance {winner}, best energy {frugal}")
    print("paper Section V-C: capacity mitigates thread starvation; low")
    print("leakage only wins while the runtime stays short.")


if __name__ == "__main__":
    main()
