#!/usr/bin/env python3
"""Workload characterization: profile the full suite plus a custom trace.

Reproduces Table VI for the sixteen characterized workloads and then
shows the same pipeline on a *user-defined* synthetic workload built
from the library's stream primitives — the intended extension path for
profiling your own access patterns.

Run:  python examples/workload_characterization.py [--quick]
"""

import sys

import numpy as np

from repro import prism, workloads
from repro.prism.profile import FEATURE_LABELS, FEATURE_NAMES
from repro.trace.synth import (
    StreamComponent,
    compose_trace,
    pooled_sampler,
    strided_sampler,
)


def profile_suite(quick: bool) -> None:
    print(f"{'bmk':12s}" + "".join(f"{label:>10s}" for label in FEATURE_LABELS))
    n = 20_000 if quick else None
    for name in workloads.characterized_benchmarks():
        trace = workloads.generate_trace(name, n_accesses=n)
        features = prism.extract_features(trace)
        cells = []
        for feature in FEATURE_NAMES:
            value = getattr(features, feature)
            cells.append(f"{value:10.2f}" if value < 1e5 else f"{value:10.3g}")
        print(f"{name:12s}" + "".join(cells))


def profile_custom() -> None:
    """A made-up 'feature extraction' kernel: streams a frame buffer,
    reduces into a hot accumulator region, rarely touches a lookup
    table."""
    rng = np.random.default_rng(42)
    components = [
        StreamComponent(
            strided_sampler(base=0x10000000, stride_bytes=8,
                            region_bytes=8 * 1024 * 1024),
            weight=0.55,
            write_fraction=0.05,
        ),
        StreamComponent(
            pooled_sampler(base=0x20000000, n_pages=64, skew=1.2),
            weight=0.35,
            write_fraction=0.6,
        ),
        StreamComponent(
            pooled_sampler(base=0x30000000, n_pages=4096, skew=0.2),
            weight=0.10,
            write_fraction=0.0,
        ),
    ]
    trace = compose_trace(
        rng, components, n_accesses=100_000, mean_gap=3.0, name="featkernel"
    )
    features = prism.extract_features(trace)
    print("\ncustom workload 'featkernel':")
    for feature in FEATURE_NAMES:
        print(f"  {feature:24s} {getattr(features, feature):12.2f}")
    print(f"  write intensity          {features.write_intensity:12.2f}")


def main() -> None:
    quick = "--quick" in sys.argv
    profile_suite(quick)
    profile_custom()


if __name__ == "__main__":
    main()
