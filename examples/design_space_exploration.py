#!/usr/bin/env python3
"""Design-space exploration: model *your own* NVM cell with the paper's
heuristics and see where its LLC lands against the released library.

This walks the paper's Section III pipeline end to end:

1. start from an (incomplete) cell spec as a VLSI paper would report it,
2. fill the gaps with heuristics 1-3,
3. run the NVSim-equivalent circuit model at fixed capacity,
4. solve the fixed-area capacity for the SRAM budget,
5. compare against the Table II/III library on a workload.

Run:  python examples/design_space_exploration.py
"""

from repro import nvsim, sim, units, workloads
from repro.cells import (
    CellClass,
    NVMCell,
    cells_of_class,
    interpolate_from_cells,
    reported,
    similar_parameter,
    validate_cell,
)
from repro.cells.heuristics import apply_electrical_properties
from repro.nvsim import CacheDesign, generate_llc_model, generate_fixed_area_model


def build_hypothetical_sttram() -> NVMCell:
    """A hypothetical 2018-era 28 nm STTRAM, as a paper might report it:
    geometry and write currents published, energies and sensing missing."""
    cell = NVMCell(
        name="Hypo28",
        citation="hypothetical 28 nm STT-MRAM",
        cell_class=CellClass.STTRAM,
        year=2018,
        process_nm=reported(28),
        cell_size_f2=reported(30),
        cell_levels=reported(1),
        read_voltage_v=reported(0.45),
        reset_current_ua=reported(60),
        reset_pulse_ns=reported(5),
        set_current_ua=reported(45),
        set_pulse_ns=reported(5),
    )
    donors = cells_of_class(CellClass.STTRAM)

    # Heuristic 2: interpolate read power from the STTRAM trend.
    read_power = interpolate_from_cells(
        donors, "read_voltage_v", "read_power_uw", at=0.45
    )
    cell = cell.with_params(read_power_uw=read_power)

    # Heuristic 1 closes the remaining energy gaps from I*V*t.
    cell = apply_electrical_properties(cell)

    report = validate_cell(cell)
    print(f"cell {cell.display_name}: "
          f"{len(report.reported)} reported, {len(report.derived)} derived, "
          f"missing: {report.missing or 'none'}")
    for key, param in cell.derived_parameters().items():
        print(f"  derived {key} = {param.value:.3g} ({param.note})")
    return cell


def main() -> None:
    cell = build_hypothetical_sttram()

    design = CacheDesign(capacity_bytes=2 * units.MB)
    model = generate_llc_model(cell, design)
    print(f"\nfixed-capacity LLC model ({model.capacity_mb:.0f} MB):")
    print(f"  area   {model.area_mm2:.2f} mm^2")
    print(f"  read   {model.read_latency_s * 1e9:.2f} ns, "
          f"write {model.write_latency_s * 1e9:.2f} ns")
    print(f"  E_hit  {model.hit_energy_j * 1e9:.3f} nJ, "
          f"E_write {model.write_energy_j * 1e9:.3f} nJ, "
          f"leak {model.leakage_w:.3f} W")

    fixed_area = generate_fixed_area_model(cell)
    print(f"\nfixed-area capacity in the SRAM budget: "
          f"{fixed_area.capacity_mb:.0f} MB")

    # Where does it land against the library on a real workload?
    trace = workloads.generate_trace("bzip2")
    session = sim.SimulationSession(trace)
    baseline = session.run(nvsim.sram_baseline())
    print(f"\nbzip2 on Gainestown, normalised to SRAM:")
    rows = [("Hypo28_S (generated)", model)]
    rows += [
        (name, nvsim.published_model(name))
        for name in ("Chung_S", "Jan_S", "Xue_S")
    ]
    for label, llc in rows:
        norm = sim.normalize(session.run(llc), baseline)
        print(f"  {label:22s} speedup {norm.speedup:.3f}  "
              f"energy {norm.energy_ratio:.3f}  ed2p {norm.ed2p_ratio:.3f}")


if __name__ == "__main__":
    main()
