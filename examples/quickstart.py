#!/usr/bin/env python3
"""Quickstart: simulate one workload on an NVM LLC vs the SRAM baseline.

Generates the `leela` (cpu2017 AI) trace, runs it through the Gainestown
model with the paper's published Xue_S (STTRAM) and SRAM LLC models, and
prints the paper's three normalised metrics.

Run:  python examples/quickstart.py
"""

from repro import nvsim, sim, workloads


def main() -> None:
    # 1. A workload: synthetic trace calibrated to the paper's leela.
    trace = workloads.generate_trace("leela")
    print(f"workload: {trace.name}")
    print(f"  accesses: {trace.n_accesses:,} ({trace.n_writes:,} writes)")
    print(f"  instructions: {trace.n_instructions:,}")

    # 2. LLC models: the paper's published Table III values.
    sram = nvsim.sram_baseline("fixed-capacity")
    xue = nvsim.published_model("Xue_S", "fixed-capacity")
    print(f"\nLLC under test: {xue.name} ({xue.cell_class.value}, "
          f"{xue.capacity_mb:.0f} MB)")
    print(f"  read {xue.read_latency_s * 1e9:.2f} ns / "
          f"write {xue.write_latency_s * 1e9:.2f} ns, "
          f"leakage {xue.leakage_w:.3f} W (SRAM: {sram.leakage_w:.3f} W)")

    # 3. Simulate both on the quad-core Gainestown (Table IV).
    session = sim.SimulationSession(trace)
    baseline = session.run(sram)
    result = session.run(xue)
    print(f"\nbaseline (SRAM): runtime {baseline.runtime_s * 1e6:.1f} us, "
          f"LLC energy {baseline.llc_energy_j * 1e6:.1f} uJ, "
          f"mpki {baseline.mpki:.1f}")

    # 4. The paper's normalised triple.
    norm = sim.normalize(result, baseline)
    print(f"\n{xue.name} vs SRAM:")
    print(f"  speedup        : {norm.speedup:.3f}  (paper: ~0.97-1.03)")
    print(f"  LLC energy     : {norm.energy_ratio:.3f}  (paper: ~0.1x SRAM)")
    print(f"  ED^2P          : {norm.ed2p_ratio:.3f}")


if __name__ == "__main__":
    main()
